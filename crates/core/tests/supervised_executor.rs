//! The supervised parallel executor against the serial reference paths:
//! bit-identical merges at every worker count, retry-through-faults, the
//! degraded path with widened intervals, and shard-granular resume.

use std::time::Duration;
use yac_core::{
    full_study, full_study_supervised, full_study_workers, render_loss_table, run_checkpointed,
    run_supervised, table2, yield_interval, ConstraintSpec, ExecutorConfig, Population,
    PopulationConfig, ShardFaultPlan, StudyError, YieldConstraints,
};
use yac_obs::Metric;
use yac_variation::FaultPlan;

const CHIPS: usize = 120;
const SEED: u64 = 2006;

fn config(faults: Option<FaultPlan>) -> PopulationConfig {
    let mut cfg = PopulationConfig::paper(SEED);
    cfg.chips = CHIPS;
    cfg.faults = faults;
    cfg
}

fn exec(workers: usize) -> ExecutorConfig {
    let mut e = ExecutorConfig::with_workers(workers);
    e.shard_chips = 16;
    e.backoff = Duration::ZERO;
    e
}

/// Per-chip delay/leakage bit patterns under both organisations: the
/// strictest possible equality between two populations.
fn bit_signature(pop: &Population) -> Vec<(u64, [u64; 4])> {
    pop.chips
        .iter()
        .map(|c| {
            (
                c.index,
                [
                    c.regular.delay.to_bits(),
                    c.regular.leakage.to_bits(),
                    c.horizontal.delay.to_bits(),
                    c.horizontal.leakage.to_bits(),
                ],
            )
        })
        .collect()
}

fn assert_matches_serial(cfg: &PopulationConfig, parallel: &Population, label: &str) {
    let serial = Population::generate_with(cfg);
    assert_eq!(
        bit_signature(parallel),
        bit_signature(&serial),
        "{label}: per-chip f64 bits must match the serial path"
    );
    assert_eq!(parallel.chips, serial.chips, "{label}: full chip data");
    assert_eq!(
        parallel.quarantine(),
        serial.quarantine(),
        "{label}: quarantine ledgers"
    );
    let constraints = YieldConstraints::derive(&serial, ConstraintSpec::NOMINAL);
    assert_eq!(
        render_loss_table(&table2(parallel, &constraints)),
        render_loss_table(&table2(&serial, &constraints)),
        "{label}: rendered loss tables must be byte-identical"
    );
}

#[test]
fn merge_is_bit_identical_to_serial_for_every_worker_count() {
    for faults in [None, Some(FaultPlan::new(0.10, 17).unwrap())] {
        let cfg = config(faults);
        for workers in [1, 2, 4, 7] {
            let outcome = run_supervised(&cfg, &exec(workers)).unwrap();
            assert!(!outcome.is_degraded(), "no shard faults were injected");
            assert_eq!(outcome.requested_chips, CHIPS);
            assert_matches_serial(
                &cfg,
                &outcome.population,
                &format!("workers={workers}, faults={}", faults.is_some()),
            );
        }
    }
}

#[test]
fn retried_shards_still_merge_bit_identically() {
    let cfg = config(Some(FaultPlan::new(0.08, 3).unwrap()));
    for workers in [2, 4] {
        let mut e = exec(workers);
        // Half the shards panic on their first two attempts; three
        // retries are enough for all of them to come back.
        e.shard_faults = Some(ShardFaultPlan::new(0.5, 9, 2).unwrap());
        e.max_retries = 3;
        let before = yac_obs::global().counter(Metric::ShardRetries);
        yac_obs::enable();
        let outcome = run_supervised(&cfg, &e).unwrap();
        let retries = yac_obs::global().counter(Metric::ShardRetries) - before;
        assert!(!outcome.is_degraded(), "retry budget covers the faults");
        assert!(retries > 0, "the fault plan must actually fire");
        assert_matches_serial(
            &cfg,
            &outcome.population,
            &format!("retry workers={workers}"),
        );
    }
}

#[test]
fn exhausted_retries_degrade_the_shard_but_complete_the_study() {
    let cfg = config(None);
    let mut e = exec(4);
    let plan = FaultPlan::new(0.3, 5).unwrap();
    e.shard_faults = Some(ShardFaultPlan::new(0.3, 5, u32::MAX).unwrap());
    e.max_retries = 1;

    yac_obs::enable();
    let registry = yac_obs::global();
    let degraded_before = registry.counter(Metric::DegradedShards);
    let outcome = run_supervised(&cfg, &e).unwrap();
    let degraded_delta = registry.counter(Metric::DegradedShards) - degraded_before;

    // The failing shards are exactly the ones the deterministic plan
    // selects (shard indices hashed like chip indices).
    let shard_count = CHIPS.div_ceil(e.shard_chips);
    let expected: Vec<u64> = (0..shard_count as u64)
        .filter(|&s| plan.fault_for(SEED, s).is_some())
        .map(|s| s * e.shard_chips as u64)
        .collect();
    assert!(
        !expected.is_empty() && expected.len() < shard_count,
        "plan must fail some but not all shards (got {expected:?})"
    );
    let starts: Vec<u64> = outcome.degraded.iter().map(|d| d.start).collect();
    assert_eq!(starts, expected, "degraded map");
    for d in &outcome.degraded {
        assert_eq!(d.attempts, 2, "max_retries=1 means two attempts");
        assert!(d.error.contains("injected shard fault"), "{}", d.error);
    }
    assert!(
        degraded_delta >= expected.len() as u64,
        "degraded_shards counter must be non-zero"
    );

    // The study still completed, every chip is accounted for, and the
    // survivors match the serial run restricted to the surviving shards.
    assert_eq!(
        outcome.population.len() + outcome.missing_chips(),
        CHIPS,
        "no chip silently vanished"
    );
    let serial = Population::generate_with(&cfg);
    let survivors: Vec<u64> = outcome.population.chips.iter().map(|c| c.index).collect();
    assert_eq!(
        bit_signature(&outcome.population),
        bit_signature(&serial.restricted_to(&survivors)),
    );

    // The interval is widened by the missing chips, not silently
    // re-normalised to the shrunken denominator.
    let narrow = yield_interval(
        (outcome.yield_interval.estimate * outcome.population.len() as f64).round() as usize,
        outcome.population.len(),
        0,
    );
    assert!(
        outcome.yield_interval.width() > narrow.width(),
        "interval {} must be wider than the no-missing one {}",
        outcome.yield_interval,
        narrow
    );
    assert!(outcome.yield_interval.lo < narrow.lo);
    assert!(outcome.yield_interval.hi > narrow.hi);
}

#[test]
fn deadline_watchdog_cancels_overlong_shards() {
    let cfg = config(None);
    let mut e = ExecutorConfig::with_workers(2);
    e.shard_chips = CHIPS; // one big shard
    e.max_retries = 0;
    e.backoff = Duration::ZERO;
    // Deterministic however fast the machine is: the worker checks its
    // own elapsed time between chips, so a 1 ns budget is exceeded by
    // the second chip at the latest — the test does not race the
    // watchdog thread's first sweep.
    e.shard_deadline = Some(Duration::from_nanos(1));

    yac_obs::enable();
    let registry = yac_obs::global();
    let timeouts_before = registry.counter(Metric::ShardTimeouts);
    let outcome = run_supervised(&cfg, &e).unwrap();
    assert_eq!(outcome.degraded.len(), 1, "the single shard must time out");
    assert!(
        outcome.degraded[0].error.contains("deadline"),
        "{}",
        outcome.degraded[0].error
    );
    assert_eq!(outcome.missing_chips(), CHIPS);
    assert!(outcome.population.is_empty());
    assert!(registry.counter(Metric::ShardTimeouts) > timeouts_before);
    // Vacuous interval: nothing measured, everything possible.
    assert_eq!(outcome.yield_interval.lo, 0.0);
    assert_eq!(outcome.yield_interval.hi, 1.0);
}

#[test]
fn full_study_workers_matches_full_study() {
    let serial = full_study(CHIPS, SEED);
    for workers in [1, 3] {
        let parallel = full_study_workers(CHIPS, SEED, workers).unwrap();
        assert_eq!(parallel, serial, "workers={workers}");
    }
}

#[test]
fn full_study_refuses_a_degraded_population() {
    let cfg = config(None);
    let mut e = exec(4);
    e.shard_faults = Some(ShardFaultPlan::new(0.3, 5, u32::MAX).unwrap());
    e.max_retries = 0;

    let direct = run_supervised(&cfg, &e).unwrap();
    assert!(direct.is_degraded(), "the plan must degrade some shards");

    // The full-study wrapper promises the whole population; a partial
    // one must surface as an error, not a shrunken-denominator study.
    let err = full_study_supervised(&cfg, &e).unwrap_err();
    assert_eq!(
        err,
        StudyError::Degraded {
            missing: direct.missing_chips(),
            requested: CHIPS,
        }
    );
}

#[test]
fn serial_and_shard_checkpoints_refuse_each_other() {
    let dir = std::env::temp_dir().join("yac-executor-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let cfg = config(None);

    // A partial serial (chip-granular) checkpoint...
    let serial_path = dir.join("serial.ckpt");
    let _ = std::fs::remove_file(&serial_path);
    let partial = yac_core::run_checkpointed_budget(&cfg, &serial_path, 8, Some(16)).unwrap();
    assert!(partial.is_none());
    // ... cannot be resumed by the parallel runner...
    let err = yac_core::run_checkpointed_workers(&cfg, &exec(2), &serial_path, 1).unwrap_err();
    assert!(matches!(err, StudyError::Mismatch(_)), "got {err}");

    // ... and a shard-granular one cannot be resumed by the serial one.
    let shard_path = dir.join("shards.ckpt");
    let _ = std::fs::remove_file(&shard_path);
    let partial =
        yac_core::run_checkpointed_workers_budget(&cfg, &exec(2), &shard_path, 1, Some(2)).unwrap();
    assert!(partial.is_none());
    let err = run_checkpointed(&cfg, &shard_path, 8).unwrap_err();
    assert!(matches!(err, StudyError::Mismatch(_)), "got {err}");

    // A different shard layout is refused too.
    let mut other = exec(2);
    other.shard_chips = 10;
    let err = yac_core::run_checkpointed_workers(&cfg, &other, &shard_path, 1).unwrap_err();
    assert!(matches!(err, StudyError::Mismatch(_)), "got {err}");

    let _ = std::fs::remove_file(&serial_path);
    let _ = std::fs::remove_file(&shard_path);
}

#[test]
fn killed_parallel_run_resumes_bit_exactly() {
    let dir = std::env::temp_dir().join("yac-executor-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("resume.ckpt");
    let _ = std::fs::remove_file(&path);
    let cfg = config(Some(FaultPlan::new(0.08, 3).unwrap()));

    // Kill after 3 shards, twice, then run to completion.
    for _ in 0..2 {
        let partial =
            yac_core::run_checkpointed_workers_budget(&cfg, &exec(4), &path, 1, Some(3)).unwrap();
        assert!(partial.is_none(), "study must not be complete yet");
    }
    let outcome = yac_core::run_checkpointed_workers(&cfg, &exec(4), &path, 2).unwrap();
    assert!(!outcome.is_degraded());
    assert_matches_serial(&cfg, &outcome.population, "kill-resume");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn degraded_shards_survive_checkpoint_resume() {
    let dir = std::env::temp_dir().join("yac-executor-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("degraded-resume.ckpt");
    let _ = std::fs::remove_file(&path);
    let cfg = config(None);
    let mut faulty = exec(2);
    faulty.shard_faults = Some(ShardFaultPlan::new(0.3, 5, u32::MAX).unwrap());
    faulty.max_retries = 0;

    // Run a few shards (some degrade), then resume with healthy workers:
    // the degraded records persist instead of being silently retried.
    let partial =
        yac_core::run_checkpointed_workers_budget(&cfg, &faulty, &path, 1, Some(4)).unwrap();
    assert!(partial.is_none());
    let outcome = yac_core::run_checkpointed_workers(&cfg, &exec(2), &path, 2).unwrap();

    let direct = run_supervised(&cfg, &faulty).unwrap();
    let first_four: Vec<_> = direct
        .degraded
        .iter()
        .filter(|d| d.start < 4 * 16)
        .collect();
    assert!(!first_four.is_empty(), "the plan must hit an early shard");
    assert_eq!(
        outcome.degraded.iter().map(|d| d.start).collect::<Vec<_>>(),
        first_four.iter().map(|d| d.start).collect::<Vec<_>>(),
    );
    assert_eq!(outcome.population.len() + outcome.missing_chips(), CHIPS);
    let _ = std::fs::remove_file(&path);
}
