//! Acceptance tests for the self-healing runtime, under *seeded,
//! deterministic* chaos:
//!
//! * `mem_rate` bit-flip injection: every corrupted cache entry is
//!   quarantined (never served) and the repaired entry is bit-identical
//!   to a cold recompute;
//! * `stall_shard` hang injection: the sweep completes without a
//!   service restart — the stalled shard is either reassigned to a
//!   healthy lane or recorded honestly degraded — with the evidence in
//!   the trace journal and the `health` report.
//!
//! The chaos plan and the trace journal are process-global, so the
//! tests in this file serialize on one mutex and never share a process
//! with other test files.

use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex};
use std::time::Duration;
use yac_core::{
    chaos, ChaosPlan, ConstraintSpec, ExecutorConfig, PowerDownKind, ServiceConfig, ServiceReply,
    StudyQuery, SweepService,
};
use yac_obs::TraceEventKind;

static GLOBAL_CHAOS: Mutex<()> = Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL_CHAOS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn query(chips: usize, seed: u64) -> StudyQuery {
    StudyQuery {
        chips,
        seed,
        constraint: ConstraintSpec::NOMINAL,
        kind: PowerDownKind::Vertical,
        cpi: None,
    }
}

fn expect_record(reply: ServiceReply) -> (String, bool) {
    match reply {
        ServiceReply::Result { record, cached, .. } => (record, cached),
        other => panic!("expected a result, got {other:?}"),
    }
}

/// All kinds recorded in the global journal, across threads.
fn traced_kinds() -> Vec<TraceEventKind> {
    yac_obs::journal()
        .snapshot()
        .threads
        .iter()
        .flat_map(|t| t.events.iter().map(|e| e.kind))
        .collect()
}

/// Acceptance: with `mem_rate=1.0` every stored entry rots, yet the
/// service never serves rotted bytes — each read of a corrupted entry
/// quarantines it and recomputes, and each repair is bit-identical to
/// the cold compute. Trace evidence: `EntryQuarantined` precedes
/// `EntryRepaired` on the query thread.
#[test]
fn injected_memory_rot_is_quarantined_and_repaired_bit_identically() {
    let _lock = serialized();
    chaos::clear();
    yac_obs::enable();
    yac_obs::trace_enable();
    yac_obs::journal().clear();

    let mut exec = ExecutorConfig::with_workers(2);
    exec.shard_chips = 8;
    let service = SweepService::new(ServiceConfig {
        exec,
        max_inflight: 1,
        cache_bytes: 1 << 20,
        // Driven synchronously below, so the run is deterministic.
        heartbeat_budget: None,
        scrub_interval: None,
        ..ServiceConfig::default()
    });
    let cancel = Arc::new(AtomicBool::new(false));
    let q = query(16, 29);

    // Rot every insert from here on.
    chaos::install(ChaosPlan::new(13, 0.0).unwrap().with_mem(1.0).unwrap());

    // Cold compute: the reply carries canonical bytes; the *stored*
    // copy rots at insert. A scrub pass catches it without any read.
    let (cold, cached) = expect_record(service.query(&q, &cancel));
    assert!(!cached);
    service.scrub_now();
    let stats = service.stats();
    assert_eq!(stats.scrub_passes, 1);
    assert_eq!(stats.quarantined, 1, "the rotted entry was caught");

    // The re-query misses (tombstone), recomputes, and the insert over
    // the tombstone is the repair — bit-identical by construction.
    let (repaired, cached) = expect_record(service.query(&q, &cancel));
    assert!(!cached);
    assert_eq!(repaired, cold, "repair must equal the cold compute");
    assert_eq!(service.stats().repaired, 1);

    // With chaos cleared the next repair sticks: one more
    // quarantine-and-recompute (the previous repair's stored copy had
    // rotted again), then a clean, verified cache hit.
    chaos::clear();
    let (recomputed, cached) = expect_record(service.query(&q, &cancel));
    assert!(!cached);
    assert_eq!(recomputed, cold);
    let (hit, cached) = expect_record(service.query(&q, &cancel));
    assert!(cached, "a clean entry finally serves from cache");
    assert_eq!(hit, cold, "served bytes are always canonical");

    let stats = service.stats();
    assert_eq!(stats.quarantined, 2);
    assert_eq!(stats.repaired, 2);
    assert_eq!(
        service.health().quarantined,
        2,
        "health mirrors the scrub counters"
    );

    // Trace evidence, in causal order on the query thread.
    let kinds = traced_kinds();
    let quarantine = kinds
        .iter()
        .position(|k| *k == TraceEventKind::EntryQuarantined)
        .expect("EntryQuarantined traced");
    let repair = kinds
        .iter()
        .position(|k| *k == TraceEventKind::EntryRepaired)
        .expect("EntryRepaired traced");
    assert!(quarantine < repair, "quarantine precedes repair");
    assert!(kinds.contains(&TraceEventKind::ScrubPass));

    yac_obs::trace_disable();
    service.shutdown();
}

/// Acceptance: with `stall_shard` hanging one shard's first attempt,
/// the sweep still completes — the sentinel cancels the stalled lease
/// and the shard is reassigned to a healthy lane — without a pool
/// restart, and the result is bit-identical to an unstalled run. Trace
/// evidence: `HeartbeatMissed` and `ShardReassigned`.
#[test]
fn a_stalled_shard_is_reassigned_and_the_sweep_completes() {
    let _lock = serialized();
    chaos::clear();
    yac_obs::enable();
    yac_obs::trace_enable();
    yac_obs::journal().clear();

    let mk_exec = || {
        let mut exec = ExecutorConfig::with_workers(2);
        exec.shard_chips = 8;
        exec
    };
    let q = query(32, 41); // Four shards across two workers.

    // The control run, no chaos: what an unstalled sweep computes.
    let control = SweepService::new(ServiceConfig {
        exec: mk_exec(),
        max_inflight: 1,
        cache_bytes: 1 << 20,
        heartbeat_budget: None,
        scrub_interval: None,
        ..ServiceConfig::default()
    });
    let cancel = Arc::new(AtomicBool::new(false));
    let (expected, _) = expect_record(control.query(&q, &cancel));
    control.shutdown();

    // The chaos run: shard index 1's first attempt hangs until the
    // sentinel's cooperative cancel lands.
    chaos::install(ChaosPlan::new(7, 0.0).unwrap().stall(1));
    let service = SweepService::new(ServiceConfig {
        exec: mk_exec(),
        max_inflight: 1,
        cache_bytes: 1 << 20,
        heartbeat_budget: Some(Duration::from_millis(200)),
        scrub_interval: None,
        max_reassigns: 1,
        ..ServiceConfig::default()
    });
    let (record, cached) = expect_record(service.query(&q, &cancel));
    assert!(!cached);
    assert_eq!(
        record, expected,
        "a reassigned sweep is bit-identical to an unstalled one"
    );

    let stats = service.stats();
    assert_eq!(stats.reassigned, 1, "exactly one reassignment");
    assert_eq!(stats.pool_restarts, 0, "no service restart was needed");
    let health = service.health();
    assert!(health.heartbeats_missed >= 1, "{health:?}");
    assert_eq!(health.shards_reassigned, 1);
    assert_eq!(health.degraded, 0, "the reassign succeeded; no degrade");

    let kinds = traced_kinds();
    assert!(kinds.contains(&TraceEventKind::HeartbeatMissed));
    assert!(kinds.contains(&TraceEventKind::ShardReassigned));

    chaos::clear();
    yac_obs::trace_disable();
    service.shutdown();
}
