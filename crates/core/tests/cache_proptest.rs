//! Property test for the service result cache: arbitrary hit/miss/
//! insert/eviction interleavings must leave [`ResultCache`] consistent
//! with a brute-force reference model — a recency-ordered `Vec` that
//! recomputes eviction from first principles on every insert.

use proptest::prelude::*;
use yac_core::service::ENTRY_OVERHEAD;
use yac_core::ResultCache;

/// One step of the interleaving. Keys are drawn from a small space so
/// sequences actually produce hits, replacements and evictions.
#[derive(Debug, Clone)]
enum Op {
    Get(u64),
    Insert(u64, usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // A tuple strategy rather than `prop_oneof!` (the vendored macro is
    // same-typed): kind selects the operation, the other fields feed it.
    ((0u8..2), (0u64..12), (0usize..240)).prop_map(|(kind, key, len)| {
        if kind == 0 {
            Op::Get(key)
        } else {
            Op::Insert(key, len)
        }
    })
}

/// The reference model: front = least recently used, back = most. Every
/// rule the cache implements is restated here independently: get bumps
/// recency, insert replaces then evicts from the front until the byte
/// budget holds, oversized records are refused without side effects.
struct Model {
    budget: usize,
    entries: Vec<(u64, String)>,
}

impl Model {
    fn bytes(&self) -> usize {
        self.entries
            .iter()
            .map(|(_, r)| r.len() + ENTRY_OVERHEAD)
            .sum()
    }

    fn get(&mut self, key: u64) -> Option<String> {
        let pos = self.entries.iter().position(|&(k, _)| k == key)?;
        let entry = self.entries.remove(pos);
        let record = entry.1.clone();
        self.entries.push(entry);
        Some(record)
    }

    fn insert(&mut self, key: u64, record: String) -> bool {
        if record.len() + ENTRY_OVERHEAD > self.budget {
            return false;
        }
        self.entries.retain(|&(k, _)| k != key);
        self.entries.push((key, record));
        while self.bytes() > self.budget {
            self.entries.remove(0);
        }
        true
    }
}

/// A record of `len` bytes whose content encodes the key, so a stale or
/// cross-wired entry is caught by content comparison, not just presence.
fn record_for(key: u64, len: usize) -> String {
    let mut text = format!("record-{key}-");
    while text.len() < len {
        text.push('x');
    }
    text.truncate(len.max(1));
    text
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Replay the same interleaving through the cache and the model:
    /// every get agrees (hit vs miss *and* content), the byte budget is
    /// never exceeded, and the surviving entry sets match exactly —
    /// which pins the LRU eviction order, since a different eviction
    /// choice would leave a different survivor set.
    #[test]
    fn cache_matches_reference_model(
        budget in 64usize..1200,
        ops in prop::collection::vec(op_strategy(), 1..200),
    ) {
        let mut cache = ResultCache::new(budget);
        let mut model = Model { budget, entries: Vec::new() };

        for op in &ops {
            match *op {
                Op::Get(key) => {
                    let got = cache.get(key);
                    let want = model.get(key);
                    prop_assert_eq!(got, want, "get({}) disagrees", key);
                }
                Op::Insert(key, len) => {
                    let record = record_for(key, len);
                    let accepted = cache.insert(key, record.clone());
                    let model_accepted = model.insert(key, record);
                    prop_assert_eq!(accepted, model_accepted, "insert({}) acceptance disagrees", key);
                }
            }
            prop_assert!(cache.bytes() <= budget, "byte budget exceeded: {} > {}", cache.bytes(), budget);
            prop_assert_eq!(cache.len(), model.entries.len(), "entry counts diverged");
            prop_assert_eq!(cache.bytes(), model.bytes(), "byte accounting diverged");
        }

        // Survivors agree in content: every model entry is retrievable
        // from the cache with identical bytes (and by the length check
        // above, nothing extra survived in the cache).
        for (key, record) in model.entries.clone() {
            prop_assert_eq!(cache.get(key), Some(record), "survivor {} missing or stale", key);
        }

        // Hit/miss accounting is consistent: every get was one or the other.
        let gets = ops.iter().filter(|op| matches!(op, Op::Get(_))).count() as u64;
        prop_assert_eq!(cache.hits() + cache.misses(), gets + model.entries.len() as u64);
    }
}
