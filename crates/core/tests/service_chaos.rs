//! Chaos-injection test for cache persistence, in its own integration
//! binary: the chaos plan is process-global, so this file keeps exactly
//! one test — no other test shares the process while a plan is live.

use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use yac_core::{
    chaos, ChaosPlan, ConstraintSpec, ExecutorConfig, PowerDownKind, ResultCache, ServiceConfig,
    ServiceReply, StudyError, StudyQuery, SweepService,
};

/// One test, four acts: (1) with a rate-1.0 chaos plan installed, the
/// cache save fails with a typed I/O error naming the `cache-file` site;
/// (2) with the plan cleared, save/load round-trips the entries and the
/// LRU order (proved by loading under a one-entry budget: the
/// most-recently-used entry is the survivor); (3) a corrupted byte and
/// (4) a torn tail are both refused as `Corrupt` — the whole-file
/// rewrite discipline tolerates no partial state, unlike the
/// append-only sweep journal.
#[test]
fn chaos_faults_on_cache_persistence_surface_and_clear() {
    let dir = std::env::temp_dir().join(format!("yac-svc-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cache.yac");
    let _ = std::fs::remove_file(&path);

    // A real record via the real pipeline, so load's parse-and-rerender
    // validation sees canonical text.
    let mut exec = ExecutorConfig::with_workers(2);
    exec.shard_chips = 8;
    let service = SweepService::new(ServiceConfig {
        exec,
        max_inflight: 1,
        cache_bytes: 1 << 20,
        ..ServiceConfig::default()
    });
    let cancel = Arc::new(AtomicBool::new(false));
    let query = |seed: u64| StudyQuery {
        chips: 16,
        seed,
        constraint: ConstraintSpec::NOMINAL,
        kind: PowerDownKind::Vertical,
        cpi: None,
    };
    let results: Vec<(u64, String)> = [41u64, 42]
        .iter()
        .map(|&seed| match service.query(&query(seed), &cancel) {
            ServiceReply::Result { record, key, .. } => (key, record),
            other => panic!("query failed: {other:?}"),
        })
        .collect();
    let (old_key, _) = results[0];
    let (mru_key, ref mru_record) = results[1];

    // Touch the first entry so recency order is (42 old, 41 new)... then
    // re-touch 42 so the order is unambiguous: 41 is LRU, 42 is MRU.
    service.with_cache(|c| {
        assert!(c.get(old_key).is_some());
        assert!(c.get(mru_key).is_some());
    });

    // Act 1: every durable write faults; the save surfaces a typed error
    // naming the injection site, and the cache file never appears.
    chaos::install(ChaosPlan::new(9, 1.0).unwrap());
    let err = service.with_cache(|c| c.save(&path)).unwrap_err();
    assert!(
        matches!(err, StudyError::Io { .. }),
        "chaos fault should surface as Io, got {err:?}"
    );
    assert!(
        err.to_string().contains("cache-file"),
        "error should name the cache-file site: {err}"
    );
    assert!(
        !path.exists(),
        "a faulted save must not leave a file behind"
    );

    // Act 2: plan cleared, the same save succeeds and round-trips.
    chaos::clear();
    service.with_cache(|c| c.save(&path)).unwrap();
    let mut loaded = ResultCache::load(&path, 1 << 20).unwrap().unwrap();
    assert_eq!(loaded.len(), 2);
    assert_eq!(
        loaded.get(mru_key).as_deref(),
        Some(mru_record.as_str()),
        "round-tripped record diverged"
    );

    // LRU order survives persistence: under a budget that fits only one
    // entry, the load replays entries oldest-first, so the MRU entry is
    // the one that survives the final eviction.
    let one_entry_budget = mru_record.len() + yac_core::service::ENTRY_OVERHEAD + 8;
    let mut tight = ResultCache::load(&path, one_entry_budget).unwrap().unwrap();
    assert_eq!(tight.len(), 1);
    assert!(
        tight.get(mru_key).is_some(),
        "persisted recency order was lost: the MRU entry should survive"
    );

    // Act 3: flip one byte inside the file body -> Corrupt.
    let good = std::fs::read(&path).unwrap();
    let mut bad = good.clone();
    let mid = bad.len() / 2;
    bad[mid] = if bad[mid] == b'x' { b'y' } else { b'x' };
    std::fs::write(&path, &bad).unwrap();
    let err = ResultCache::load(&path, 1 << 20).unwrap_err();
    assert!(
        matches!(err, StudyError::Corrupt { .. }),
        "bit flip should be Corrupt, got {err:?}"
    );

    // Act 4: a torn tail (truncated final line) is also Corrupt — the
    // whole-file format refuses partial state rather than salvaging it.
    std::fs::write(&path, &good[..good.len() - 7]).unwrap();
    let err = ResultCache::load(&path, 1 << 20).unwrap_err();
    assert!(
        matches!(err, StudyError::Corrupt { .. }),
        "torn tail should be Corrupt, got {err:?}"
    );

    // And an empty file is Corrupt, not a silent cold start.
    std::fs::write(&path, b"").unwrap();
    assert!(matches!(
        ResultCache::load(&path, 1 << 20),
        Err(StudyError::Corrupt { .. })
    ));

    service.shutdown();
}
