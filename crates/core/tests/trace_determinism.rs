//! Enabling event tracing must never change a study's results: the
//! journal is observation only, exactly like the metrics registry.
//! These tests run the same study with the global journal off and on
//! and require bit-identical outputs — including on the supervised
//! parallel executor, whose shard lifecycle is the most heavily traced
//! path — and then check the trace actually captured that lifecycle.

use std::sync::Mutex;
use yac_core::{
    run_supervised, suite_cpis_isolated, table2, ConstraintSpec, ExecutorConfig, PerfOptions,
    Population, PopulationConfig, YieldConstraints,
};
use yac_obs::{ndjson, perfetto, TraceEventKind};
use yac_pipeline::PipelineConfig;

/// The tests in this file toggle the process-global journal (and read
/// the global registry), so they must not interleave with each other.
static GLOBAL_JOURNAL: Mutex<()> = Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL_JOURNAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Supervised 4-worker study with tracing off vs. on: the merged
/// population and the loss table are bit-identical, per the acceptance
/// criterion that tracing changes no study result.
#[test]
fn supervised_loss_tables_identical_with_tracing_on_and_off() {
    let _lock = serialized();
    let mut cfg = PopulationConfig::paper(2006);
    cfg.chips = 300;
    let exec = ExecutorConfig::with_workers(4);

    yac_obs::trace_disable();
    let off = run_supervised(&cfg, &exec)
        .expect("valid config")
        .population;
    let c_off = YieldConstraints::derive(&off, ConstraintSpec::NOMINAL);
    let t2_off = table2(&off, &c_off);

    yac_obs::enable(); // metrics on top of tracing: the worst case
    yac_obs::trace_enable();
    let on = run_supervised(&cfg, &exec)
        .expect("valid config")
        .population;
    let c_on = YieldConstraints::derive(&on, ConstraintSpec::NOMINAL);
    let t2_on = table2(&on, &c_on);
    yac_obs::trace_disable();

    assert_eq!(off.chips, on.chips, "chips differ with tracing on");
    assert_eq!(off.quarantine(), on.quarantine());
    assert_eq!(t2_off, t2_on, "loss table differs with tracing on");
    // Per-chip figures are bit-identical, not merely close.
    for (a, b) in off.chips.iter().zip(&on.chips) {
        assert_eq!(a.regular.delay.to_bits(), b.regular.delay.to_bits());
        assert_eq!(a.regular.leakage.to_bits(), b.regular.leakage.to_bits());
    }
}

/// Serial study path: same guarantee.
#[test]
fn serial_loss_tables_identical_with_tracing_on_and_off() {
    let _lock = serialized();
    yac_obs::trace_disable();
    let pop_off = Population::generate(200, 7);
    let c_off = YieldConstraints::derive(&pop_off, ConstraintSpec::NOMINAL);
    let t2_off = table2(&pop_off, &c_off);

    yac_obs::trace_enable();
    let pop_on = Population::generate(200, 7);
    let c_on = YieldConstraints::derive(&pop_on, ConstraintSpec::NOMINAL);
    let t2_on = table2(&pop_on, &c_on);
    yac_obs::trace_disable();

    assert_eq!(pop_off.chips, pop_on.chips);
    assert_eq!(t2_off, t2_on);
}

/// Pipeline CPI simulation is unaffected by tracing.
#[test]
fn suite_cpis_identical_with_tracing_on_and_off() {
    let opts = PerfOptions {
        warmup_uops: 2_000,
        measure_uops: 5_000,
        trace_seed: 1,
    };
    let l1d = yac_cache::CacheConfig::l1d_paper();
    let pipeline = PipelineConfig::paper();

    let _lock = serialized();
    yac_obs::trace_disable();
    let (off, fail_off) = suite_cpis_isolated(&l1d, &pipeline, &opts);
    yac_obs::trace_enable();
    let (on, fail_on) = suite_cpis_isolated(&l1d, &pipeline, &opts);
    yac_obs::trace_disable();

    assert_eq!(fail_off, fail_on);
    assert_eq!(off.len(), on.len());
    for ((name_off, cpi_off), (name_on, cpi_on)) in off.iter().zip(&on) {
        assert_eq!(name_off, name_on);
        assert!(
            cpi_off.to_bits() == cpi_on.to_bits(),
            "{name_off}: CPI differs with tracing on ({cpi_off} vs {cpi_on})"
        );
    }
}

/// While enabled, a supervised 4-worker run actually lands in the
/// journal: shard lifecycle events with worker/shard/attempt context,
/// exportable to both formats.
#[test]
fn traced_supervised_run_captures_the_shard_lifecycle() {
    let _lock = serialized();
    let journal = yac_obs::journal();
    journal.clear();
    yac_obs::enable();
    yac_obs::trace_enable();
    let mut cfg = PopulationConfig::paper(11);
    cfg.chips = 256;
    let mut exec = ExecutorConfig::with_workers(4);
    exec.shard_chips = 32; // 8 shards across 4 workers
    let outcome = run_supervised(&cfg, &exec).expect("valid config");
    yac_obs::trace_disable();
    assert!(!outcome.is_degraded());

    let snap = journal.snapshot();
    let events: Vec<_> = snap.threads.iter().flat_map(|t| &t.events).collect();
    let count = |kind| events.iter().filter(|e| e.kind == kind).count();
    assert_eq!(count(TraceEventKind::ShardDispatched), 8);
    assert_eq!(count(TraceEventKind::ShardCompleted), 8);
    // Every completion names its worker, shard and attempt.
    for e in events
        .iter()
        .filter(|e| e.kind == TraceEventKind::ShardCompleted)
    {
        assert!(e.ctx.worker.is_some_and(|w| w < 4), "worker ctx: {e:?}");
        assert!(e.ctx.shard.is_some_and(|s| s < 8), "shard ctx: {e:?}");
        assert_eq!(e.ctx.attempt, Some(0), "first attempt succeeded");
    }
    // Worker threads labelled themselves; every shard-exec span lives on
    // a worker track.
    let worker_tracks: Vec<_> = snap
        .threads
        .iter()
        .filter(|t| t.label.starts_with("worker-"))
        .collect();
    assert!(
        !worker_tracks.is_empty() && worker_tracks.len() <= 4,
        "worker tracks: {:?}",
        snap.threads.iter().map(|t| &t.label).collect::<Vec<_>>()
    );
    let exec_spans: usize = worker_tracks
        .iter()
        .flat_map(|t| &t.events)
        .filter(|e| {
            matches!(e.kind, TraceEventKind::PhaseSpan(p) if p == yac_obs::Phase::ShardExec)
                && e.dur_ns > 0
        })
        .count();
    assert_eq!(exec_spans, 8, "one shard-exec span per shard attempt");

    // Both exports round-trip the run.
    let parsed = ndjson::parse_ndjson(&ndjson::to_ndjson(&snap)).expect("ndjson parses");
    assert_eq!(parsed.count_kind(TraceEventKind::ShardCompleted), 8);
    let chrome = perfetto::to_chrome_json(&snap);
    for track in &worker_tracks {
        assert!(chrome.contains(&format!("\"tid\":{}", track.slot)));
    }
    journal.clear();
}
