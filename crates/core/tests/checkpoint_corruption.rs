//! Checkpoint corruption must fail loudly: truncated, bit-rotted,
//! wrong-magic and stale-seed files are all rejected with typed errors,
//! and the run entry points surface (never swallow) them.

use std::path::PathBuf;
use yac_core::{run_checkpointed, run_checkpointed_budget, PopulationConfig, StudyError};

fn tmp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("yac-corruption-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn config(chips: usize, seed: u64) -> PopulationConfig {
    let mut cfg = PopulationConfig::paper(seed);
    cfg.chips = chips;
    cfg
}

/// Writes a real partial checkpoint and returns its text.
fn partial_checkpoint(path: &PathBuf, cfg: &PopulationConfig) -> String {
    let _ = std::fs::remove_file(path);
    let partial = run_checkpointed_budget(cfg, path, 5, Some(10)).unwrap();
    assert!(partial.is_none(), "checkpoint must be partial");
    std::fs::read_to_string(path).unwrap()
}

#[test]
fn truncated_checkpoint_is_rejected_not_resumed() {
    let cfg = config(20, 31);
    let path = tmp_path("truncated.ckpt");
    let text = partial_checkpoint(&path, &cfg);
    std::fs::write(&path, &text[..text.len() / 2]).unwrap();
    let err = run_checkpointed(&cfg, &path, 5).unwrap_err();
    assert!(matches!(err, StudyError::Corrupt { .. }), "got {err}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn flipped_hex_digit_is_caught_by_the_crc() {
    let cfg = config(20, 32);
    let path = tmp_path("bitrot.ckpt");
    let text = partial_checkpoint(&path, &cfg);
    // Flip one hex digit inside the first chip record: the line still
    // parses as a well-formed f64 image, so only the CRC can object.
    let at = text.find("C 0 ").unwrap() + 4;
    let mut rotted = text.into_bytes();
    rotted[at] = if rotted[at] == b'0' { b'1' } else { b'0' };
    std::fs::write(&path, rotted).unwrap();
    let err = run_checkpointed(&cfg, &path, 5).unwrap_err();
    match &err {
        StudyError::Corrupt { what, .. } => {
            assert!(what.contains("CRC mismatch"), "got {what}");
        }
        other => panic!("want Corrupt, got {other}"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn wrong_magic_is_rejected_at_line_one() {
    let cfg = config(20, 33);
    let path = tmp_path("magic.ckpt");
    let text = partial_checkpoint(&path, &cfg);
    std::fs::write(
        &path,
        text.replacen("YAC-CHECKPOINT v2", "YAC-CHECKPOINT v9", 1),
    )
    .unwrap();
    let err = run_checkpointed(&cfg, &path, 5).unwrap_err();
    assert!(
        matches!(err, StudyError::Corrupt { line: 1, .. }),
        "got {err}"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn stale_seed_checkpoint_is_refused() {
    let cfg = config(20, 34);
    let path = tmp_path("stale.ckpt");
    let _ = partial_checkpoint(&path, &cfg);
    let newer = config(20, 35);
    let err = run_checkpointed(&newer, &path, 5).unwrap_err();
    match &err {
        StudyError::Mismatch(what) => assert!(what.contains("seed"), "got {what}"),
        other => panic!("want Mismatch, got {other}"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn load_surfaces_io_errors_instead_of_starting_fresh() {
    // A directory at the checkpoint path is neither absent nor readable:
    // the run must report the I/O failure, not silently recompute.
    let cfg = config(10, 36);
    let dir_path = tmp_path("i-am-a-directory.ckpt");
    let _ = std::fs::remove_dir(&dir_path);
    std::fs::create_dir_all(&dir_path).unwrap();
    let err = run_checkpointed(&cfg, &dir_path, 5).unwrap_err();
    assert!(matches!(err, StudyError::Io { .. }), "got {err}");
    let _ = std::fs::remove_dir(&dir_path);
}

#[test]
fn invalid_variation_config_is_a_typed_error() {
    let mut cfg = config(10, 37);
    cfg.variation.ways = 0;
    let path = tmp_path("never-written.ckpt");
    let _ = std::fs::remove_file(&path);
    let err = run_checkpointed(&cfg, &path, 5).unwrap_err();
    assert!(matches!(err, StudyError::Config(_)), "got {err}");
    assert!(!path.exists(), "no checkpoint may be written");

    // The parallel entry point reports the same typed error.
    let exec = yac_core::ExecutorConfig::with_workers(2);
    let err = yac_core::run_checkpointed_workers(&cfg, &exec, &path, 1).unwrap_err();
    assert!(matches!(err, StudyError::Config(_)), "got {err}");
    assert!(!path.exists());
}
