//! Integration tests for the sweep service: bit-identical cache hits
//! (against both a recompute and a `run_sweep` journal), typed `Busy`
//! backpressure under saturation, cooperative cancellation, journal
//! warm-start, and the TCP wire protocol end to end.
//!
//! Assertions read reply payloads and per-service cache counters, never
//! the process-global metric registry — other tests in this binary share
//! that registry.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use yac_core::sweep::render_result;
use yac_core::{
    client_request, run_sweep, serve, ConstraintSpec, ExecutorConfig, PowerDownKind, ServiceConfig,
    ServiceReply, ServiceRequest, ShardFaultPlan, StudyError, StudyQuery, StudyStatus, SweepConfig,
    SweepGrid, SweepService,
};

fn no_cancel() -> Arc<AtomicBool> {
    Arc::new(AtomicBool::new(false))
}

fn query(chips: usize, seed: u64, kind: PowerDownKind) -> StudyQuery {
    StudyQuery {
        chips,
        seed,
        constraint: ConstraintSpec::NOMINAL,
        kind,
        cpi: None,
    }
}

/// A fast executor: two workers, small shards, no faults.
fn fast_exec() -> ExecutorConfig {
    let mut exec = ExecutorConfig::with_workers(2);
    exec.shard_chips = 8;
    exec
}

/// A deliberately slow executor: every shard fails its first attempts
/// and sits out the retry backoff, so a query reliably takes hundreds of
/// milliseconds — long enough to observe saturation and cancellation —
/// while still completing (attempts outlast the failures).
fn slow_exec(failing_attempts: u32, backoff_ms: u64) -> ExecutorConfig {
    let mut exec = ExecutorConfig::with_workers(2);
    exec.shard_chips = 8;
    exec.max_retries = failing_attempts;
    exec.backoff = Duration::from_millis(backoff_ms);
    exec.shard_faults = Some(ShardFaultPlan::always(failing_attempts));
    exec
}

fn expect_result(reply: ServiceReply) -> (String, u64, bool) {
    match reply {
        ServiceReply::Result {
            record,
            key,
            cached,
        } => (record, key, cached),
        other => panic!("expected a result, got {other:?}"),
    }
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("yac-service-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// The core acceptance property: a repeated identical query is answered
/// from the cache with *bit-identical* text, and that text also equals
/// what a completely fresh service computes — the cache returns bytes,
/// never a re-derivation.
#[test]
fn repeat_queries_hit_the_cache_bit_identically() {
    let service = SweepService::new(ServiceConfig {
        exec: fast_exec(),
        max_inflight: 2,
        cache_bytes: 1 << 20,
        ..ServiceConfig::default()
    });
    let q = query(24, 2006, PowerDownKind::Vertical);

    let (first, key1, cached1) = expect_result(service.query(&q, &no_cancel()));
    let (second, key2, cached2) = expect_result(service.query(&q, &no_cancel()));
    assert!(!cached1, "first query must compute");
    assert!(cached2, "second identical query must hit the cache");
    assert_eq!(key1, key2);
    assert_eq!(
        first, second,
        "cached reply is not bit-identical to the computed one"
    );

    // A fresh service (fresh pool, fresh cache, different worker count)
    // recomputes the same bytes: the record depends only on the query.
    let fresh = SweepService::new(ServiceConfig {
        exec: ExecutorConfig::with_workers(4),
        max_inflight: 1,
        cache_bytes: 1 << 20,
        ..ServiceConfig::default()
    });
    let (recomputed, key3, cached3) = expect_result(fresh.query(&q, &no_cancel()));
    assert!(!cached3);
    assert_eq!(key1, key3, "fingerprint must not depend on executor tuning");
    assert_eq!(first, recomputed, "recompute on a fresh service diverged");

    assert_eq!(service.with_cache(|c| (c.hits(), c.misses())), (1, 1));
    fresh.shutdown();
    service.shutdown();
}

/// The service's record for a cell is byte-identical to what `run_sweep`
/// journals for the same cell — the two pipelines share one canonical
/// rendering, so a journal can warm the service cache losslessly.
#[test]
fn service_records_match_run_sweep_journal_records() {
    let journal = temp_path("bitident.journal");
    let _ = std::fs::remove_file(&journal);
    let grid = SweepGrid {
        chips: 24,
        seeds: vec![11],
        constraints: vec![ConstraintSpec::NOMINAL],
        kinds: vec![PowerDownKind::Horizontal],
    };
    let config = SweepConfig {
        exec: fast_exec(),
        ..SweepConfig::default()
    };
    let outcome = run_sweep(&grid, &config, &journal).unwrap();
    let StudyStatus::Completed(sweep_result) = &outcome.studies[0].1 else {
        panic!("sweep cell did not complete: {:?}", outcome.studies[0].1);
    };

    let service = SweepService::new(ServiceConfig {
        exec: fast_exec(),
        max_inflight: 1,
        cache_bytes: 1 << 20,
        ..ServiceConfig::default()
    });
    let (record, _, cached) =
        expect_result(service.query(&query(24, 11, PowerDownKind::Horizontal), &no_cancel()));
    assert!(!cached);
    assert_eq!(
        record,
        render_result(sweep_result),
        "service and run_sweep rendered different bytes for the same cell"
    );
    service.shutdown();
}

/// Saturation semantics: with `max_inflight = 1` and one slow query
/// computing, the next miss is refused with a typed `Busy { inflight,
/// limit }` — but a cache *hit* is still served, because hits never
/// consume an admission slot. Once the slow query drains, the refused
/// query is admitted normally.
#[test]
fn saturated_service_answers_typed_busy_but_still_serves_hits() {
    let service = Arc::new(SweepService::new(ServiceConfig {
        exec: slow_exec(2, 100),
        max_inflight: 1,
        cache_bytes: 1 << 20,
        ..ServiceConfig::default()
    }));

    // Pre-cache query A (slow, but completes: retries outlast the faults).
    let qa = query(16, 7, PowerDownKind::Vertical);
    let (record_a, _, cached) = expect_result(service.query(&qa, &no_cancel()));
    assert!(!cached);

    // Saturate the single admission slot with query B on another thread.
    let qb = query(16, 8, PowerDownKind::Vertical);
    let slow = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || service.query(&qb, &no_cancel()))
    };
    let deadline = Instant::now() + Duration::from_secs(10);
    while service.inflight() == 0 {
        assert!(
            Instant::now() < deadline,
            "slow query never entered computation"
        );
        std::thread::sleep(Duration::from_millis(1));
    }

    // A miss is refused with typed backpressure...
    let qc = query(16, 9, PowerDownKind::Vertical);
    match service.query(&qc, &no_cancel()) {
        ServiceReply::Busy {
            inflight,
            limit,
            retry_after_ms,
        } => {
            assert_eq!(inflight, 1);
            assert_eq!(limit, 1);
            assert_eq!(retry_after_ms, yac_core::service::DEFAULT_RETRY_AFTER_MS);
        }
        other => panic!("saturated service should refuse with Busy, got {other:?}"),
    }
    // ...while a hit is served bit-identically, bypassing admission.
    let (hit, _, cached) = expect_result(service.query(&qa, &no_cancel()));
    assert!(cached, "hits must be served even when saturated");
    assert_eq!(hit, record_a);

    let (_, _, cached_b) = expect_result(slow.join().unwrap());
    assert!(!cached_b);

    // The slot is free again: the refused query now computes.
    let (_, _, cached_c) = expect_result(service.query(&qc, &no_cancel()));
    assert!(!cached_c);

    let stats = service.stats();
    assert_eq!(stats.busy, 1);
    assert_eq!(stats.served, 4);
    assert_eq!(stats.queries, 5);
    Arc::try_unwrap(service).unwrap().shutdown();
}

/// Cancellation: a flag raised before submission cancels immediately; a
/// flag raised mid-computation (during retry backoff) cancels the query
/// in flight. Either way the service stays healthy and answers the next
/// query normally — no slot leaks, no poisoned pool.
#[test]
fn cancelled_queries_release_the_service_cleanly() {
    let service = SweepService::new(ServiceConfig {
        exec: slow_exec(1, 100),
        max_inflight: 1,
        cache_bytes: 1 << 20,
        ..ServiceConfig::default()
    });

    // Pre-set flag: cancelled before any shard runs.
    let cancelled = Arc::new(AtomicBool::new(true));
    assert_eq!(
        service.query(&query(16, 21, PowerDownKind::Vertical), &cancelled),
        ServiceReply::Cancelled
    );

    // Mid-flight: every shard fails its first attempt and backs off for
    // 100 ms; raising the flag at 25 ms lands squarely inside that
    // backoff window, before any retry can complete.
    let cancel = no_cancel();
    let timer = {
        let cancel = Arc::clone(&cancel);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(25));
            cancel.store(true, Ordering::Release);
        })
    };
    assert_eq!(
        service.query(&query(16, 22, PowerDownKind::Vertical), &cancel),
        ServiceReply::Cancelled
    );
    timer.join().unwrap();
    assert_eq!(
        service.inflight(),
        0,
        "cancelled query leaked its admission slot"
    );

    // The service is still healthy: the same query, uncancelled, computes.
    let (_, _, cached) =
        expect_result(service.query(&query(16, 22, PowerDownKind::Vertical), &no_cancel()));
    assert!(!cached, "cancelled queries must not populate the cache");
    service.shutdown();
}

/// Warm-start: a completed `run_sweep` journal warms the cache, the
/// first query for a warmed cell is already a hit with the journal's
/// exact bytes, and a journal from a different grid is refused with the
/// same mismatch discipline as the sweep orchestrator.
#[test]
fn journal_warm_start_serves_first_queries_from_cache() {
    let journal = temp_path("warm.journal");
    let _ = std::fs::remove_file(&journal);
    let grid = SweepGrid {
        chips: 24,
        seeds: vec![31],
        constraints: vec![ConstraintSpec::NOMINAL],
        kinds: vec![PowerDownKind::Vertical, PowerDownKind::Horizontal],
    };
    let config = SweepConfig {
        exec: fast_exec(),
        ..SweepConfig::default()
    };
    let outcome = run_sweep(&grid, &config, &journal).unwrap();
    assert_eq!(outcome.completed(), 2);

    let service = SweepService::new(ServiceConfig {
        exec: fast_exec(),
        max_inflight: 1,
        cache_bytes: 1 << 20,
        ..ServiceConfig::default()
    });
    let warmed = service
        .with_cache(|c| c.warm_from_journal(&grid, &config, &journal))
        .unwrap();
    assert_eq!(warmed, 2, "both completed cells should warm the cache");

    for (kind, expected) in [
        (PowerDownKind::Vertical, &outcome.studies[0].1),
        (PowerDownKind::Horizontal, &outcome.studies[1].1),
    ] {
        let StudyStatus::Completed(result) = expected else {
            panic!("cell should be completed");
        };
        let (record, _, cached) = expect_result(service.query(&query(24, 31, kind), &no_cancel()));
        assert!(cached, "warmed cell should hit on its first query");
        assert_eq!(record, render_result(result));
    }

    // A journal for a different grid is refused, never silently mis-keyed.
    let other_grid = SweepGrid {
        chips: 25,
        ..grid.clone()
    };
    let err = service
        .with_cache(|c| c.warm_from_journal(&other_grid, &config, &journal))
        .unwrap_err();
    assert!(
        matches!(err, StudyError::Mismatch(_)),
        "wrong-grid warm start should be a Mismatch, got {err:?}"
    );
    service.shutdown();
}

/// Malformed queries are answered with a typed error, not a panic or a
/// dropped connection.
#[test]
fn zero_chip_queries_are_refused_with_an_error() {
    let service = SweepService::new(ServiceConfig {
        exec: fast_exec(),
        max_inflight: 1,
        cache_bytes: 1 << 20,
        ..ServiceConfig::default()
    });
    match service.query(&query(0, 1, PowerDownKind::Vertical), &no_cancel()) {
        ServiceReply::Error { message } => assert!(message.contains("chips")),
        other => panic!("zero chips should be an error, got {other:?}"),
    }
    service.shutdown();
}

/// The full wire path: a real TCP listener, `serve` on a thread, typed
/// requests through `client_request` — compute, hit bit-identically,
/// read stats, shut down cleanly.
#[test]
fn tcp_round_trip_serves_hits_stats_and_shutdown() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let service = Arc::new(SweepService::new(ServiceConfig {
        exec: fast_exec(),
        max_inflight: 2,
        cache_bytes: 1 << 20,
        ..ServiceConfig::default()
    }));
    let server = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || serve(&listener, &service))
    };

    let request = ServiceRequest::Query {
        query: query(24, 5, PowerDownKind::Vertical),
        deadline_ms: None,
    };
    let (first, raw) = client_request(&addr, &request).unwrap();
    assert!(
        raw.starts_with('{') && raw.ends_with('}'),
        "reply is not a JSON object: {raw}"
    );
    let (record1, key1, cached1) = expect_result(first);
    let (second, _) = client_request(&addr, &request).unwrap();
    let (record2, key2, cached2) = expect_result(second);
    assert!(!cached1);
    assert!(cached2, "second wire query should be a cache hit");
    assert_eq!(key1, key2);
    assert_eq!(record1, record2, "wire replies are not bit-identical");

    match client_request(&addr, &ServiceRequest::Stats).unwrap().0 {
        ServiceReply::Stats(stats) => {
            assert_eq!(stats.queries, 2);
            assert_eq!(stats.served, 2);
            assert_eq!(stats.cache_hits, 1);
            assert_eq!(stats.cache_misses, 1);
            assert_eq!(stats.cache_entries, 1);
        }
        other => panic!("expected stats, got {other:?}"),
    }

    let (bye, _) = client_request(&addr, &ServiceRequest::Shutdown).unwrap();
    assert_eq!(bye, ServiceReply::Bye);
    server.join().unwrap().unwrap();
    Arc::try_unwrap(service)
        .expect("all connection handlers exited")
        .shutdown();
}
