//! Property tests for [`yac_core::yield_interval`]: the interval must be
//! well-ordered and clamped to the unit range for *every* combination of
//! shipped/evaluated/missing counts, including the degenerate corners —
//! nothing evaluated, everything missing, clamping at both ends — and
//! missing chips must only ever widen it.

use proptest::prelude::*;
use yac_core::yield_interval;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn interval_is_ordered_and_clamped_to_the_unit_range(
        evaluated in 0usize..4000,
        ship_fraction in 0.0f64..1.0,
        ship_all in any::<bool>(),
        missing in 0usize..4000,
    ) {
        let shipped = if ship_all {
            evaluated
        } else {
            ((evaluated as f64) * ship_fraction) as usize
        };
        let iv = yield_interval(shipped.min(evaluated), evaluated, missing);
        prop_assert!(iv.lo <= iv.hi, "lo {} > hi {}", iv.lo, iv.hi);
        prop_assert!((0.0..=1.0).contains(&iv.lo), "lo {}", iv.lo);
        prop_assert!((0.0..=1.0).contains(&iv.hi), "hi {}", iv.hi);
        prop_assert!((0.0..=1.0).contains(&iv.estimate));
        prop_assert!(iv.lo.is_finite() && iv.hi.is_finite());
        prop_assert!(iv.width() >= 0.0);
    }

    #[test]
    fn estimate_ignores_missing_chips_but_bounds_honour_them(
        evaluated in 1usize..2000,
        shipped_seed in any::<u64>(),
        missing in 1usize..2000,
    ) {
        let shipped = (shipped_seed % (evaluated as u64 + 1)) as usize;
        let exact = yield_interval(shipped, evaluated, 0);
        let widened = yield_interval(shipped, evaluated, missing);

        // The point estimate is over evaluated chips only.
        prop_assert_eq!(widened.estimate.to_bits(), exact.estimate.to_bits());
        prop_assert_eq!(widened.estimate, shipped as f64 / evaluated as f64);

        // The widened interval nests around the exact one.
        prop_assert!(widened.lo <= exact.lo, "{} > {}", widened.lo, exact.lo);
        prop_assert!(widened.hi >= exact.hi, "{} < {}", widened.hi, exact.hi);
        prop_assert!(widened.contains(exact.estimate));
    }

    #[test]
    fn missing_chips_widen_monotonically(
        evaluated in 1usize..500,
        shipped_seed in any::<u64>(),
        missing_a in 0usize..500,
        extra in 1usize..500,
    ) {
        let shipped = (shipped_seed % (evaluated as u64 + 1)) as usize;
        let a = yield_interval(shipped, evaluated, missing_a);
        let b = yield_interval(shipped, evaluated, missing_a + extra);
        // More missing chips never narrows either bound (equality happens
        // only once a bound is pinned at the 0/1 clamp).
        prop_assert!(b.lo <= a.lo);
        prop_assert!(b.hi >= a.hi);
        prop_assert!(b.width() >= a.width());
    }

    #[test]
    fn all_shards_degraded_means_a_vacuous_interval(missing in 1usize..10_000) {
        // 0 observed chips: the paper's numbers cannot be salvaged, and
        // the interval must admit it spans everything.
        let iv = yield_interval(0, 0, missing);
        prop_assert_eq!(iv.estimate, 0.0);
        prop_assert_eq!((iv.lo, iv.hi), (0.0, 1.0));
        prop_assert!(iv.contains(0.0) && iv.contains(0.5) && iv.contains(1.0));
    }

    #[test]
    fn extreme_proportions_clamp_instead_of_escaping(
        evaluated in 1usize..3000,
        missing in 0usize..3000,
    ) {
        // All shipped: hi must clamp at 1 exactly (the Wald term would
        // push past it; se is 0 here but the missing surplus is not).
        let all = yield_interval(evaluated, evaluated, missing);
        prop_assert_eq!(all.estimate, 1.0);
        prop_assert!(all.hi <= 1.0);
        if missing == 0 {
            prop_assert_eq!((all.lo, all.hi), (1.0, 1.0));
        }

        // None shipped: lo must clamp at 0 exactly.
        let none = yield_interval(0, evaluated, missing);
        prop_assert_eq!(none.estimate, 0.0);
        prop_assert_eq!(none.lo, 0.0);
        if missing == 0 {
            prop_assert_eq!((none.lo, none.hi), (0.0, 0.0));
        }
    }

    #[test]
    fn small_populations_keep_sane_intervals(
        evaluated in 1usize..5,
        shipped_seed in any::<u64>(),
        missing in 0usize..5,
    ) {
        // Tiny shard-sized populations are exactly what degraded sweeps
        // produce; the normal approximation must still stay clamped.
        let shipped = (shipped_seed % (evaluated as u64 + 1)) as usize;
        let iv = yield_interval(shipped, evaluated, missing);
        prop_assert!(iv.lo >= 0.0 && iv.hi <= 1.0 && iv.lo <= iv.hi);
    }
}

#[test]
fn nothing_evaluated_nothing_missing_is_the_empty_interval() {
    let iv = yield_interval(0, 0, 0);
    assert_eq!((iv.estimate, iv.lo, iv.hi), (0.0, 0.0, 0.0));
    assert!(iv.contains(0.0) && !iv.contains(0.1));
}

#[test]
#[should_panic(expected = "cannot ship more")]
fn shipping_more_than_evaluated_panics() {
    let _ = yield_interval(5, 4, 100);
}
