//! Enabling observability must never change a study's results: metrics
//! are observation only. These tests run the same study with the global
//! registry off and on and require byte-identical outputs.

use std::sync::Mutex;
use yac_core::{
    suite_cpis_isolated, table2, table3, ConstraintSpec, PerfOptions, Population, YieldConstraints,
};
use yac_pipeline::PipelineConfig;

/// The tests in this file toggle the process-global registry, so they
/// must not interleave with each other.
static GLOBAL_REGISTRY: Mutex<()> = Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL_REGISTRY
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Full yield study (population → constraints → Tables 2–3) with metrics
/// on vs. off produces identical `LossTable` output.
#[test]
fn loss_tables_identical_with_metrics_on_and_off() {
    let _lock = serialized();
    yac_obs::disable();
    let pop_off = Population::generate(400, 2006);
    let c_off = YieldConstraints::derive(&pop_off, ConstraintSpec::NOMINAL);
    let t2_off = table2(&pop_off, &c_off);
    let t3_off = table3(&pop_off, &c_off);

    yac_obs::enable();
    let pop_on = Population::generate(400, 2006);
    let c_on = YieldConstraints::derive(&pop_on, ConstraintSpec::NOMINAL);
    let t2_on = table2(&pop_on, &c_on);
    let t3_on = table3(&pop_on, &c_on);
    yac_obs::disable();

    assert_eq!(pop_off.chips, pop_on.chips);
    assert_eq!(t2_off, t2_on);
    assert_eq!(t3_off, t3_on);
    // The rendered reports match byte-for-byte too.
    assert_eq!(
        yac_core::render_loss_table(&t2_off),
        yac_core::render_loss_table(&t2_on)
    );
}

/// Pipeline CPI simulation is unaffected by metrics collection.
#[test]
fn suite_cpis_identical_with_metrics_on_and_off() {
    let opts = PerfOptions {
        warmup_uops: 2_000,
        measure_uops: 5_000,
        trace_seed: 1,
    };
    let l1d = yac_cache::CacheConfig::l1d_paper();
    let pipeline = PipelineConfig::paper();

    let _lock = serialized();
    yac_obs::disable();
    let (off, fail_off) = suite_cpis_isolated(&l1d, &pipeline, &opts);
    yac_obs::enable();
    let (on, fail_on) = suite_cpis_isolated(&l1d, &pipeline, &opts);
    yac_obs::disable();

    assert_eq!(fail_off, fail_on);
    assert_eq!(off.len(), on.len());
    for ((name_off, cpi_off), (name_on, cpi_on)) in off.iter().zip(&on) {
        assert_eq!(name_off, name_on);
        assert!(
            cpi_off.to_bits() == cpi_on.to_bits(),
            "{name_off}: CPI differs with metrics on ({cpi_off} vs {cpi_on})"
        );
    }
}

/// While enabled, the study actually populates the expected counters —
/// the observability layer observes, but it does observe.
#[test]
fn enabled_metrics_see_the_study() {
    let _lock = serialized();
    let reg = yac_obs::global();
    yac_obs::enable();
    let before = reg.snapshot();
    let pop = Population::generate(64, 7);
    let c = YieldConstraints::derive(&pop, ConstraintSpec::NOMINAL);
    let _ = table2(&pop, &c);
    let after = reg.snapshot();
    yac_obs::disable();

    use yac_obs::Metric;
    let delta = |m: Metric| after.counter(m) - before.counter(m);
    assert!(delta(Metric::DiesSampled) >= 64);
    // Two circuit evaluations per chip (regular + horizontal).
    assert!(delta(Metric::CircuitEvals) >= 128);
    assert!(delta(Metric::ChipsClassified) >= 64);
    assert!(delta(Metric::RescueAttempts) >= delta(Metric::RescueSaves));
}
