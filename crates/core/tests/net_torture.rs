//! The network torture test: a real TCP service under deterministic
//! wire chaos — partial reads and writes, injected delays, mid-frame
//! disconnects, byte corruption — hammered by a swarm of resilient
//! clients. The acceptance property of the whole robustness layer:
//!
//! 1. every request ends in a bit-identical result or a *typed* error —
//!    never a hang (this test completing is the proof), never a
//!    silently wrong payload;
//! 2. all `Result` replies for the same key are byte-identical across
//!    clients, retries and cache hits;
//! 3. chaos actually bit: faults were injected and at least one retry
//!    happened;
//! 4. after a graceful drain the serve loop exits cleanly with zero
//!    in-flight queries — no admission slot leaks under fire.
//!
//! Chaos installation is process-global, so this file holds exactly one
//! test and lives in its own integration-test binary. The plan never
//! touches `YAC_CHAOS` (the env override is the binary's concern);
//! everything here is seeded directly and fully deterministic up to
//! thread scheduling.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;
use yac_core::client::{ClientConfig, ResilientClient};
use yac_core::{
    chaos, serve, ChaosPlan, ConstraintSpec, ExecutorConfig, PowerDownKind, ServiceConfig,
    ServiceReply, ServiceRequest, StudyQuery, SweepService,
};
use yac_obs::Metric;

const SEED: u64 = 2006;
const CLIENTS: usize = 3;
const REQUESTS_PER_CLIENT: usize = 8;

#[test]
fn chaotic_wire_yields_bit_identical_results_or_typed_errors() {
    let registry = yac_obs::global();
    registry.enable();
    let faults_before = registry.counter(Metric::NetFaultsInjected);
    let retries_before = registry.counter(Metric::RetryAttempts);

    let plan = ChaosPlan::new(SEED, 0.0)
        .unwrap()
        .with_net(0.05, Duration::from_micros(200))
        .unwrap();
    chaos::install(plan);

    let mut exec = ExecutorConfig::with_workers(2);
    exec.shard_chips = 8;
    let service = Arc::new(SweepService::new(ServiceConfig {
        exec,
        max_inflight: 2,
        cache_bytes: 1 << 20,
        max_conns: CLIENTS * 2 + 2,
        read_deadline: Duration::from_millis(300),
        write_deadline: Duration::from_millis(500),
        retry_after_ms: 20,
        ..ServiceConfig::default()
    }));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || serve(&listener, &service))
    };

    // The swarm: each client cycles a 3-key query space, so the run
    // mixes computes, cache hits and busy refusals under chaos.
    let mut swarm = Vec::new();
    for client_index in 0..CLIENTS {
        let addr = addr.clone();
        swarm.push(std::thread::spawn(move || {
            let mut client = ResilientClient::new(
                addr,
                ClientConfig {
                    max_attempts: 6,
                    base_backoff: Duration::from_millis(5),
                    max_backoff: Duration::from_millis(100),
                    deadline: Some(Duration::from_secs(30)),
                    breaker_threshold: 8,
                    breaker_cooldown: Duration::from_millis(100),
                    seed: SEED ^ client_index as u64,
                },
            );
            let mut results: Vec<(u64, String)> = Vec::new();
            let mut typed = 0usize;
            for i in 0..REQUESTS_PER_CLIENT {
                let request = ServiceRequest::Query {
                    query: StudyQuery {
                        chips: 16,
                        seed: SEED + (i % 3) as u64,
                        constraint: ConstraintSpec::NOMINAL,
                        kind: PowerDownKind::Vertical,
                        cpi: None,
                    },
                    deadline_ms: Some(20_000),
                };
                match client.request(&request) {
                    Ok((ServiceReply::Result { record, key, .. }, _)) => {
                        results.push((key, record));
                    }
                    // Anything else is an acceptable *typed* outcome;
                    // what is never acceptable is a hang or a panic.
                    Ok(_) | Err(_) => typed += 1,
                }
            }
            (results, typed)
        }));
    }

    let mut by_key: HashMap<u64, String> = HashMap::new();
    let mut results = 0usize;
    for handle in swarm {
        let (client_results, _typed) = handle.join().expect("client thread panicked");
        for (key, record) in client_results {
            results += 1;
            match by_key.get(&key) {
                None => {
                    by_key.insert(key, record);
                }
                Some(seen) => assert_eq!(
                    *seen, record,
                    "two replies for key {key:016x} differ — corruption slipped through"
                ),
            }
        }
    }
    assert!(
        results > 0,
        "chaos at 5% should not defeat a 6-attempt client on every single request"
    );
    assert!(by_key.len() <= 3, "more keys than the query space has");

    // Graceful drain: the serve loop exits by itself, nothing leaks.
    // The campaign is over, so lift the chaos first — the shutdown
    // handshake should not be able to strand the test on a corrupted
    // drain reply after the listener is gone.
    chaos::clear();
    let mut drainer = ResilientClient::new(addr, ClientConfig::default());
    match drainer.request(&ServiceRequest::Drain) {
        Ok((ServiceReply::Draining { .. }, _)) => {}
        other => panic!("drain was not acknowledged: {other:?}"),
    }
    server.join().unwrap().expect("serve loop failed");
    assert_eq!(service.inflight(), 0, "an admission slot leaked");

    // Chaos must have actually exercised the resilience path.
    let faults = registry.counter(Metric::NetFaultsInjected) - faults_before;
    let retries = registry.counter(Metric::RetryAttempts) - retries_before;
    assert!(faults > 0, "the chaos plan injected nothing");
    assert!(
        retries > 0,
        "{faults} faults were injected but no client ever retried"
    );

    Arc::try_unwrap(service)
        .expect("all connection handlers exited")
        .shutdown();
}
