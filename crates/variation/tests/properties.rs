//! Property-based tests for the variation substrate.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use yac_variation::dist::TruncatedNormal;
use yac_variation::stats::{pearson, percentile, Histogram, Summary};
use yac_variation::{
    CacheVariation, CorrelationFactor, GradientConfig, GradientField, MeshPosition, MonteCarlo,
    Parameter, ParameterSet, VariationConfig,
};

proptest! {
    #[test]
    fn truncated_normal_never_escapes_window(
        mean in -1e3f64..1e3,
        sigma in 0.0f64..50.0,
        limit in 0.0f64..100.0,
        seed in any::<u64>(),
    ) {
        let dist = TruncatedNormal::new(mean, sigma, limit);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..32 {
            let x = dist.sample(&mut rng);
            prop_assert!((x - mean).abs() <= limit + 1e-9);
        }
    }

    #[test]
    fn refine_respects_scaled_three_sigma_window(
        factor in 0.0f64..1.0,
        offset in -2.0f64..2.0,
        seed in any::<u64>(),
    ) {
        let f = CorrelationFactor::new(factor).unwrap();
        let parent = ParameterSet::nominal()
            .with_offset_sigmas(Parameter::ThresholdVoltage, offset);
        let mut rng = SmallRng::seed_from_u64(seed);
        let child = f.refine(&parent, &mut rng);
        for p in Parameter::ALL {
            let window = 3.0 * p.sigma() * factor;
            prop_assert!((child.get(p) - parent.get(p)).abs() <= window + 1e-9);
            prop_assert!(child.get(p) > 0.0);
        }
    }

    #[test]
    fn die_sampling_is_deterministic(seed in any::<u64>()) {
        let cfg = VariationConfig::default();
        let a = CacheVariation::sample(&cfg, &mut SmallRng::seed_from_u64(seed));
        let b = CacheVariation::sample(&cfg, &mut SmallRng::seed_from_u64(seed));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn sampled_parameters_are_physical(seed in any::<u64>()) {
        let cfg = VariationConfig::default();
        let die = CacheVariation::sample(&cfg, &mut SmallRng::seed_from_u64(seed));
        for way in &die.ways {
            for p in Parameter::ALL {
                prop_assert!(way.base.get(p) > 0.0, "{} nonpositive", p);
            }
            for region in &way.regions {
                for p in Parameter::ALL {
                    prop_assert!(region.cell_array.get(p) > 0.0);
                    prop_assert!(region.interconnect.get(p) > 0.0);
                }
            }
        }
    }

    #[test]
    fn gradient_field_offsets_are_finite_everywhere(
        seed in any::<u64>(),
        x in 0.0f64..1.0,
        y in 0.0f64..1.0,
    ) {
        let field = GradientField::sample(
            &GradientConfig::default(),
            &mut SmallRng::seed_from_u64(seed),
        );
        for p in Parameter::ALL {
            prop_assert!(field.offset_sigmas(p, x, y).is_finite());
        }
    }

    #[test]
    fn summary_mean_is_bounded_by_min_max(data in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = Summary::from_slice(&data).unwrap();
        prop_assert!(s.min <= s.mean + 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
        prop_assert!(s.std_dev >= 0.0);
    }

    #[test]
    fn percentile_is_monotone_in_q(
        data in prop::collection::vec(-1e3f64..1e3, 2..100),
        q1 in 0.0f64..100.0,
        q2 in 0.0f64..100.0,
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = percentile(&data, lo).unwrap();
        let b = percentile(&data, hi).unwrap();
        prop_assert!(a <= b + 1e-9);
    }

    #[test]
    fn pearson_is_symmetric_and_bounded(
        pairs in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 3..50),
    ) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        if let Some(r) = pearson(&xs, &ys) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            let r2 = pearson(&ys, &xs).unwrap();
            prop_assert!((r - r2).abs() < 1e-9);
        }
    }

    #[test]
    fn histogram_total_counts_every_sample(
        data in prop::collection::vec(-2.0f64..12.0, 0..300),
    ) {
        let mut h = Histogram::new(0.0, 10.0, 7).unwrap();
        for &x in &data {
            h.add(x);
        }
        prop_assert_eq!(h.total() as usize, data.len());
    }

    #[test]
    fn mesh_factor_is_reflexive_zero(way in 0usize..4) {
        let p = MeshPosition::for_way(way);
        prop_assert_eq!(p.factor_to(p), CorrelationFactor::IDENTICAL);
    }
}

#[test]
fn population_statistics_track_table1() {
    // The way-0 base draw uses the full Table 1 range; its population σ must
    // come out near each parameter's σ (slightly below, due to truncation).
    let mc = MonteCarlo::new(VariationConfig {
        gradient: GradientConfig::disabled(),
        ..VariationConfig::default()
    });
    let dies = mc.generate(4000, 17);
    for p in Parameter::ALL {
        let values: Vec<f64> = dies.iter().map(|d| d.ways[0].base.get(p)).collect();
        let s = Summary::from_slice(&values).unwrap();
        assert!(
            (s.mean - p.nominal()).abs() < 0.05 * p.nominal(),
            "{p}: mean {} vs nominal {}",
            s.mean,
            p.nominal()
        );
        let ratio = s.std_dev / p.sigma();
        assert!(
            (0.85..=1.05).contains(&ratio),
            "{p}: population sigma ratio {ratio}"
        );
        assert!(s.min >= p.nominal() - 3.0 * p.sigma() - 1e-9);
        assert!(s.max <= p.nominal() + 3.0 * p.sigma() + 1e-9);
    }
}
