//! Property tests for the deterministic fault-injection harness: injected
//! chips are always quarantined (never silently classified), the recorded
//! error matches the injected fault kind, and the outcome is byte-identical
//! across thread counts.

use proptest::prelude::*;
use yac_variation::{expected_error_class, FaultPlan, MonteCarlo, SampleError, VariationConfig};

const CHIPS: usize = 48;

fn mc() -> MonteCarlo {
    MonteCarlo::new(VariationConfig::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn injected_chips_are_quarantined_never_classified(
        rate in 0.02f64..0.6,
        seed in any::<u64>(),
        salt in any::<u64>(),
    ) {
        let plan = FaultPlan::new(rate, salt).unwrap();
        let out = mc().generate_checked(CHIPS, seed, Some(&plan));
        let expected = plan.injected_indices(seed, CHIPS);

        // Exactly the planned chips fail — no more, no fewer.
        let failed: Vec<u64> = out.failures.iter().map(|f| f.index).collect();
        prop_assert_eq!(&failed, &expected);
        prop_assert_eq!(out.dies.len() + expected.len(), CHIPS);

        // No injected chip survives into the classified set, and every
        // survivor actually passes validation.
        for (index, die) in &out.dies {
            prop_assert!(!expected.contains(index), "chip {index} slipped through");
            prop_assert!(die.validate().is_ok());
        }
    }

    #[test]
    fn quarantine_reason_matches_the_injected_fault(
        seed in any::<u64>(),
        salt in any::<u64>(),
    ) {
        let plan = FaultPlan::new(1.0, salt).unwrap();
        let out = mc().generate_checked(12, seed, Some(&plan));
        prop_assert!(out.dies.is_empty());
        for failure in &out.failures {
            let kind = plan
                .fault_for(seed, failure.index)
                .expect("rate 1.0 always injects");
            prop_assert!(
                expected_error_class(kind)(&failure.error),
                "chip {}: {:?} recorded {:?}",
                failure.index,
                kind,
                failure.error
            );
            prop_assert!(
                !matches!(failure.error, SampleError::Panicked(_)),
                "injection must fail validation, not crash the sampler"
            );
        }
    }

    #[test]
    fn outcome_is_byte_identical_across_thread_counts(
        rate in 0.0f64..0.6,
        seed in any::<u64>(),
        salt in any::<u64>(),
        threads in 2usize..6,
    ) {
        let plan = FaultPlan::new(rate, salt).unwrap();
        let sequential = mc().generate_checked_threads(CHIPS, seed, Some(&plan), 1);
        let parallel = mc().generate_checked_threads(CHIPS, seed, Some(&plan), threads);
        prop_assert_eq!(sequential.failures, parallel.failures);
        prop_assert_eq!(sequential.dies, parallel.dies);
    }
}
