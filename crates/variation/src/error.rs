//! Typed errors for the variation substrate.
//!
//! Part of the workspace-wide fault-tolerance taxonomy: configuration
//! problems are [`ConfigError`]s (programmer-facing, caught at study
//! setup), while per-die problems discovered during Monte Carlo sampling
//! are [`SampleError`]s (data-facing, quarantined by the generators in
//! [`crate::montecarlo`] instead of aborting the study).

use crate::params::Parameter;
use std::error::Error;
use std::fmt;

/// A rejected [`crate::VariationConfig`].
///
/// The `Display` messages are identical to the strings the earlier
/// `Result<(), String>` API produced, so anything matching on them keeps
/// working.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `ways == 0`.
    NoWays,
    /// `regions_per_way == 0`.
    NoRegions,
    /// More ways than the 2×2 mesh correlation model supports.
    TooManyWays,
    /// `region_systematic_sigma` is negative, NaN or infinite.
    BadRegionSigma,
    /// `worst_cell_spread_mv` is negative, NaN or infinite.
    BadWorstCellSpread,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ConfigError::NoWays => "configuration must have at least one way",
            ConfigError::NoRegions => "configuration must have at least one region per way",
            ConfigError::TooManyWays => "the 2x2 mesh correlation model supports at most 4 ways",
            ConfigError::BadRegionSigma => "region systematic sigma must be finite and nonnegative",
            ConfigError::BadWorstCellSpread => "worst-cell spread must be finite and nonnegative",
        })
    }
}

impl Error for ConfigError {}

/// Where inside a sampled die a bad value was found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleSite {
    /// The way-level base parameter draw.
    Base,
    /// The decoder structure refinement.
    Decoder,
    /// The precharge structure refinement.
    Precharge,
    /// The cell-array structure refinement.
    CellArray,
    /// The sense-amplifier structure refinement.
    SenseAmp,
    /// The output-driver structure refinement.
    OutputDriver,
    /// The cell parameters of one horizontal region.
    RegionCells(usize),
    /// The interconnect parameters of one horizontal region.
    RegionInterconnect(usize),
}

impl fmt::Display for SampleSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SampleSite::Base => f.write_str("base"),
            SampleSite::Decoder => f.write_str("decoder"),
            SampleSite::Precharge => f.write_str("precharge"),
            SampleSite::CellArray => f.write_str("cell array"),
            SampleSite::SenseAmp => f.write_str("sense amp"),
            SampleSite::OutputDriver => f.write_str("output driver"),
            SampleSite::RegionCells(r) => write!(f, "region {r} cells"),
            SampleSite::RegionInterconnect(r) => write!(f, "region {r} interconnect"),
        }
    }
}

/// A die that cannot be handed to the circuit model.
///
/// Produced by [`crate::CacheVariation::validate`] and the checked Monte
/// Carlo generators; a study run quarantines the die and continues.
///
/// Equality compares the embedded `f64`s by bit pattern, so two NaN
/// quarantine records from independent runs compare equal — this is what
/// lets tests assert outcomes are byte-identical across thread counts.
#[derive(Debug, Clone)]
pub enum SampleError {
    /// The die has no ways at all.
    NoWays,
    /// One way has no horizontal regions.
    NoRegions {
        /// The offending way index.
        way: usize,
    },
    /// A physical parameter is NaN, infinite, or a nonpositive dimension.
    BadParameter {
        /// The offending way index.
        way: usize,
        /// Which structure of the way holds the value.
        site: SampleSite,
        /// Which of the five variation parameters is bad.
        parameter: Parameter,
        /// The bad value, in the parameter's physical unit.
        value: f64,
    },
    /// A region's worst-cell excursion is NaN or infinite.
    BadWorstCell {
        /// The offending way index.
        way: usize,
        /// The offending region index.
        region: usize,
        /// The bad excursion, millivolts.
        value_mv: f64,
    },
    /// The fault plan deterministically dropped this chip.
    Dropped,
    /// The sampler panicked; the payload message is preserved.
    Panicked(String),
}

impl fmt::Display for SampleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SampleError::NoWays => f.write_str("sampled die has no ways"),
            SampleError::NoRegions { way } => write!(f, "way {way} has no regions"),
            SampleError::BadParameter {
                way,
                site,
                parameter,
                value,
            } => write!(f, "way {way} {site}: {parameter} is not physical ({value})"),
            SampleError::BadWorstCell {
                way,
                region,
                value_mv,
            } => write!(
                f,
                "way {way} region {region}: worst-cell excursion is not finite ({value_mv} mV)"
            ),
            SampleError::Dropped => f.write_str("chip dropped by fault plan"),
            SampleError::Panicked(msg) => write!(f, "sampler panicked: {msg}"),
        }
    }
}

impl PartialEq for SampleError {
    fn eq(&self, other: &Self) -> bool {
        use SampleError::{BadParameter, BadWorstCell, Dropped, NoRegions, NoWays, Panicked};
        match (self, other) {
            (NoWays, NoWays) | (Dropped, Dropped) => true,
            (NoRegions { way: a }, NoRegions { way: b }) => a == b,
            (
                BadParameter {
                    way: w1,
                    site: s1,
                    parameter: p1,
                    value: v1,
                },
                BadParameter {
                    way: w2,
                    site: s2,
                    parameter: p2,
                    value: v2,
                },
            ) => w1 == w2 && s1 == s2 && p1 == p2 && v1.to_bits() == v2.to_bits(),
            (
                BadWorstCell {
                    way: w1,
                    region: r1,
                    value_mv: v1,
                },
                BadWorstCell {
                    way: w2,
                    region: r2,
                    value_mv: v2,
                },
            ) => w1 == w2 && r1 == r2 && v1.to_bits() == v2.to_bits(),
            (Panicked(a), Panicked(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for SampleError {}

impl Error for SampleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_error_messages_match_legacy_strings() {
        assert_eq!(
            ConfigError::NoWays.to_string(),
            "configuration must have at least one way"
        );
        assert_eq!(
            ConfigError::TooManyWays.to_string(),
            "the 2x2 mesh correlation model supports at most 4 ways"
        );
        assert_eq!(
            ConfigError::BadWorstCellSpread.to_string(),
            "worst-cell spread must be finite and nonnegative"
        );
    }

    #[test]
    fn sample_error_display_names_the_location() {
        let e = SampleError::BadParameter {
            way: 2,
            site: SampleSite::RegionCells(3),
            parameter: Parameter::ThresholdVoltage,
            value: f64::NAN,
        };
        let text = e.to_string();
        assert!(text.contains("way 2"));
        assert!(text.contains("region 3 cells"));
        assert!(text.contains("threshold voltage"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn takes_error<E: Error>(_: &E) {}
        takes_error(&ConfigError::NoWays);
        takes_error(&SampleError::Dropped);
    }
}
