//! Deterministic fault injection for Monte Carlo robustness testing.
//!
//! A [`FaultPlan`] perturbs a configurable fraction of sampled
//! [`CacheVariation`]s with the degenerate values a production pipeline
//! must survive: NaN threshold voltages, infinite metal widths, tail
//! excursions so extreme the physical dimension goes nonpositive, and
//! chips that vanish outright. Which chips are hit — and how — is keyed
//! off the same SplitMix64 stream as the samples themselves, so a plan is
//! byte-identical across runs and thread counts, and tests can predict
//! exactly which indices must end up quarantined.

use crate::error::SampleError;
use crate::montecarlo::mix_seed;
use crate::params::Parameter;
use crate::sample::CacheVariation;
use std::error::Error;
use std::fmt;

/// Domain separator keeping fault draws independent of sample draws that
/// share the same study seed.
const FAULT_STREAM: u64 = 0xfa17_fa17_fa17_fa17;

/// A rejected fault rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidRateError(f64);

impl fmt::Display for InvalidRateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault rate must lie in [0, 1], got {}", self.0)
    }
}

impl Error for InvalidRateError {}

/// The kinds of corruption a [`FaultPlan`] injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A region's cell threshold voltage becomes NaN.
    NanThresholdVoltage,
    /// The way-level metal width becomes +∞.
    InfiniteMetalWidth,
    /// A region interconnect parameter takes a tail excursion so extreme
    /// (−40σ) the dimension goes nonpositive.
    ExtremeTail,
    /// The chip is dropped from the population entirely.
    DropChip,
}

impl FaultKind {
    const ALL: [FaultKind; 4] = [
        FaultKind::NanThresholdVoltage,
        FaultKind::InfiniteMetalWidth,
        FaultKind::ExtremeTail,
        FaultKind::DropChip,
    ];
}

/// A deterministic plan for corrupting a fraction of a population.
///
/// # Examples
///
/// ```
/// use yac_variation::{FaultPlan, MonteCarlo, VariationConfig};
///
/// let plan = FaultPlan::new(0.05, 99).unwrap();
/// let mc = MonteCarlo::new(VariationConfig::default());
/// let out = mc.generate_checked(200, 7, Some(&plan));
/// let hit = plan.injected_indices(7, 200);
/// assert_eq!(
///     out.failures.iter().map(|f| f.index).collect::<Vec<_>>(),
///     hit,
///     "exactly the planned chips fail"
/// );
/// assert_eq!(out.dies.len() + hit.len(), 200);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    rate: f64,
    salt: u64,
}

impl FaultPlan {
    /// A plan corrupting about `rate` of all chips, with `salt`
    /// distinguishing independent plans over the same study seed.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidRateError`] unless `rate` is finite and in `[0, 1]`.
    pub fn new(rate: f64, salt: u64) -> Result<Self, InvalidRateError> {
        if !(rate.is_finite() && (0.0..=1.0).contains(&rate)) {
            return Err(InvalidRateError(rate));
        }
        Ok(FaultPlan { rate, salt })
    }

    /// The fraction of chips this plan corrupts.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The plan's salt.
    #[must_use]
    pub fn salt(&self) -> u64 {
        self.salt
    }

    /// The fault injected into chip `index` of the stream rooted at
    /// `seed`, or `None` if the chip is left alone. Pure: depends only on
    /// `(self, seed, index)`.
    #[must_use]
    pub fn fault_for(&self, seed: u64, index: u64) -> Option<FaultKind> {
        let draw = mix_seed(seed ^ self.salt ^ FAULT_STREAM, index);
        let unit = (draw >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if unit >= self.rate {
            return None;
        }
        Some(FaultKind::ALL[(draw & 0xffff) as usize % FaultKind::ALL.len()])
    }

    /// All chip indices in `0..count` this plan corrupts, ascending.
    #[must_use]
    pub fn injected_indices(&self, seed: u64, count: usize) -> Vec<u64> {
        (0..count as u64)
            .filter(|&i| self.fault_for(seed, i).is_some())
            .collect()
    }

    /// Applies this plan to a freshly sampled die.
    ///
    /// Mutates `die` in place for value corruptions and returns the kind
    /// injected. [`FaultKind::DropChip`] performs no mutation — the caller
    /// discards the die.
    pub fn corrupt(&self, die: &mut CacheVariation, seed: u64, index: u64) -> Option<FaultKind> {
        let kind = self.fault_for(seed, index)?;
        // An independent draw selects the victim way/region so the choice
        // doesn't correlate with the kind selection bits.
        let pick = mix_seed(seed ^ self.salt ^ FAULT_STREAM.rotate_left(17), index);
        let way = (pick as usize) % die.ways.len().max(1);
        match kind {
            FaultKind::NanThresholdVoltage => {
                if let Some(w) = die.ways.get_mut(way) {
                    let region = ((pick >> 16) as usize) % w.regions.len().max(1);
                    if let Some(r) = w.regions.get_mut(region) {
                        r.cell_array.v_t_mv = f64::NAN;
                    }
                }
            }
            FaultKind::InfiniteMetalWidth => {
                if let Some(w) = die.ways.get_mut(way) {
                    w.base.metal_width_um = f64::INFINITY;
                }
            }
            FaultKind::ExtremeTail => {
                if let Some(w) = die.ways.get_mut(way) {
                    let region = ((pick >> 16) as usize) % w.regions.len().max(1);
                    if let Some(r) = w.regions.get_mut(region) {
                        let p = Parameter::MetalThickness;
                        r.interconnect.metal_thickness_um = p.nominal() - 40.0 * p.sigma();
                    }
                }
            }
            FaultKind::DropChip => {}
        }
        Some(kind)
    }
}

/// The quarantine record produced when injecting `kind` into a die: the
/// error its validation is guaranteed to report.
///
/// Exposed so tests can assert not just *that* an injected chip was
/// quarantined but *why*.
#[must_use]
pub fn expected_error_class(kind: FaultKind) -> fn(&SampleError) -> bool {
    match kind {
        FaultKind::NanThresholdVoltage | FaultKind::InfiniteMetalWidth | FaultKind::ExtremeTail => {
            |e| matches!(e, SampleError::BadParameter { .. })
        }
        FaultKind::DropChip => |e| matches!(e, SampleError::Dropped),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::VariationConfig;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn die(seed: u64) -> CacheVariation {
        CacheVariation::sample(
            &VariationConfig::default(),
            &mut SmallRng::seed_from_u64(seed),
        )
    }

    #[test]
    fn rate_is_validated() {
        assert!(FaultPlan::new(-0.1, 0).is_err());
        assert!(FaultPlan::new(1.1, 0).is_err());
        assert!(FaultPlan::new(f64::NAN, 0).is_err());
        assert!(FaultPlan::new(0.0, 0).is_ok());
        assert!(FaultPlan::new(1.0, 0).is_ok());
    }

    #[test]
    fn zero_rate_injects_nothing() {
        let plan = FaultPlan::new(0.0, 5).unwrap();
        assert!(plan.injected_indices(3, 1000).is_empty());
    }

    #[test]
    fn full_rate_injects_everything() {
        let plan = FaultPlan::new(1.0, 5).unwrap();
        assert_eq!(plan.injected_indices(3, 50).len(), 50);
    }

    #[test]
    fn fault_selection_is_deterministic_and_salted() {
        let a = FaultPlan::new(0.2, 1).unwrap();
        let b = FaultPlan::new(0.2, 2).unwrap();
        assert_eq!(a.injected_indices(9, 500), a.injected_indices(9, 500));
        assert_ne!(a.injected_indices(9, 500), b.injected_indices(9, 500));
        assert_ne!(a.injected_indices(9, 500), a.injected_indices(10, 500));
    }

    #[test]
    fn rate_is_approximately_honoured() {
        let plan = FaultPlan::new(0.05, 0).unwrap();
        let hits = plan.injected_indices(2006, 10_000).len();
        assert!((350..650).contains(&hits), "5% of 10k ≈ 500, got {hits}");
    }

    #[test]
    fn every_corruption_kind_fails_validation() {
        // Scan indices until each kind has been seen at least once.
        let plan = FaultPlan::new(1.0, 42).unwrap();
        let mut seen = [false; 4];
        for i in 0..64u64 {
            let kind = plan.fault_for(7, i).expect("rate 1.0 always injects");
            let mut d = die(i);
            let injected = plan.corrupt(&mut d, 7, i).unwrap();
            assert_eq!(injected, kind);
            match kind {
                FaultKind::DropChip => assert!(d.validate().is_ok(), "drop leaves the die intact"),
                _ => {
                    let err = d
                        .validate()
                        .expect_err("corrupted die must fail validation");
                    assert!(expected_error_class(kind)(&err), "{kind:?} gave {err:?}");
                }
            }
            seen[FaultKind::ALL.iter().position(|k| *k == kind).unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s), "all kinds exercised: {seen:?}");
    }
}
