//! Systematic intra-die variation as a smooth spatial field.
//!
//! §2 of the paper splits intra-die variation into a random and a
//! *systematic* component — "the component of parameter deviation that
//! results from a repeatable and governing principal", with strong spatial
//! correlation. The hierarchical correlation factors of [`crate::correlation`]
//! capture proximity, but not the *directionality* that makes the same
//! horizontal slice of every way slow or leaky at once — the physical
//! premise of the paper's H-YAPD scheme (§4.2).
//!
//! This module models that component as a per-die linear gradient with a
//! random direction plus a mild radial (bowl) term, evaluated at each
//! structure's die coordinates. Magnitudes are expressed in units of each
//! parameter's σ so they compose naturally with the random component.

use crate::params::{Parameter, ParameterSet};
use rand::Rng;

/// Configuration of the systematic spatial field.
///
/// # Examples
///
/// ```
/// use yac_variation::GradientConfig;
///
/// let cfg = GradientConfig::default();
/// assert!(cfg.linear_sigma > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradientConfig {
    /// Peak-to-peak magnitude of the linear gradient across the die, in
    /// units of each parameter's σ.
    pub linear_sigma: f64,
    /// Magnitude of the radial (bowl) component at the die corners, in σ.
    pub radial_sigma: f64,
    /// Per-parameter scaling of the field. Device parameters (gate length,
    /// threshold voltage) typically show stronger systematic components than
    /// interconnect geometry.
    pub device_weight: f64,
    /// Scaling of the field for interconnect parameters.
    pub interconnect_weight: f64,
}

impl GradientConfig {
    /// A configuration with no systematic component at all.
    #[must_use]
    pub fn disabled() -> Self {
        GradientConfig {
            linear_sigma: 0.0,
            radial_sigma: 0.0,
            device_weight: 0.0,
            interconnect_weight: 0.0,
        }
    }

    /// Whether the field is identically zero.
    #[must_use]
    pub fn is_disabled(&self) -> bool {
        self.linear_sigma == 0.0 && self.radial_sigma == 0.0
    }
}

impl Default for GradientConfig {
    /// Calibrated default: a gradient of ~1σ peak-to-peak on devices, a
    /// weaker one on interconnect — consistent with the 30 %+ systematic
    /// frequency spreads the paper cites for sub-130 nm nodes.
    fn default() -> Self {
        GradientConfig {
            linear_sigma: 0.7,
            radial_sigma: 1.1,
            device_weight: 1.0,
            interconnect_weight: 0.55,
        }
    }
}

/// One die's realised systematic field.
///
/// Sampled once per die (random direction, random signed magnitudes) and
/// then evaluated deterministically at any die coordinate.
///
/// # Examples
///
/// ```
/// use rand::{rngs::SmallRng, SeedableRng};
/// use yac_variation::{GradientConfig, GradientField, Parameter};
///
/// let mut rng = SmallRng::seed_from_u64(9);
/// let field = GradientField::sample(&GradientConfig::default(), &mut rng);
/// let offset = field.offset_sigmas(Parameter::ThresholdVoltage, 0.2, 0.8);
/// assert!(offset.is_finite());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradientField {
    config: GradientConfig,
    /// Unit direction of the linear gradient.
    dir: (f64, f64),
    /// Signed magnitude of the linear component, in σ.
    linear: f64,
    /// Signed magnitude of the radial component, in σ.
    radial: f64,
}

impl GradientField {
    /// Samples a die-specific field realisation.
    pub fn sample<R: Rng + ?Sized>(config: &GradientConfig, rng: &mut R) -> Self {
        let theta: f64 = rng.gen::<f64>() * std::f64::consts::TAU;
        // Magnitudes are uniform in [-max, max]: some dies are flat, some are
        // strongly tilted, matching the die-to-die diversity of systematic
        // effects.
        let linear = (rng.gen::<f64>() * 2.0 - 1.0) * config.linear_sigma;
        let radial = (rng.gen::<f64>() * 2.0 - 1.0) * config.radial_sigma;
        GradientField {
            config: *config,
            dir: (theta.cos(), theta.sin()),
            linear,
            radial,
        }
    }

    /// A field that is identically zero.
    #[must_use]
    pub fn flat() -> Self {
        GradientField {
            config: GradientConfig::disabled(),
            dir: (1.0, 0.0),
            linear: 0.0,
            radial: 0.0,
        }
    }

    /// The configuration the field was sampled from.
    #[must_use]
    pub fn config(&self) -> &GradientConfig {
        &self.config
    }

    /// Systematic offset, in units of `p.sigma()`, at normalised die
    /// coordinates `(x, y)` ∈ [0, 1]².
    #[must_use]
    pub fn offset_sigmas(&self, p: Parameter, x: f64, y: f64) -> f64 {
        let weight = match p {
            Parameter::GateLength | Parameter::ThresholdVoltage => self.config.device_weight,
            _ => self.config.interconnect_weight,
        };
        // Centre the linear term so the die mean is (approximately) zero.
        let lin = self.linear * (self.dir.0 * (x - 0.5) + self.dir.1 * (y - 0.5)) * 2.0;
        let r2 = ((x - 0.5).powi(2) + (y - 0.5).powi(2)) / 0.5;
        let rad = self.radial * (r2 - 0.5) * 2.0;
        weight * (lin + rad)
    }

    /// Applies the field to a parameter set at the given die coordinates.
    #[must_use]
    pub fn apply(&self, params: &ParameterSet, x: f64, y: f64) -> ParameterSet {
        if self.config.is_disabled() {
            return *params;
        }
        let mut out = *params;
        for p in Parameter::ALL {
            out = out.with_offset_sigmas(p, self.offset_sigmas(p, x, y));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn disabled_config_produces_zero_field() {
        let field = GradientField::flat();
        for p in Parameter::ALL {
            assert_eq!(field.offset_sigmas(p, 0.9, 0.1), 0.0);
        }
        let params = ParameterSet::nominal();
        assert_eq!(field.apply(&params, 0.3, 0.7), params);
    }

    #[test]
    fn offsets_are_bounded_by_configured_magnitude() {
        let cfg = GradientConfig::default();
        let mut rng = SmallRng::seed_from_u64(1);
        let bound = (cfg.linear_sigma * std::f64::consts::SQRT_2 + cfg.radial_sigma)
            * cfg.device_weight.max(cfg.interconnect_weight)
            + 1e-9;
        for _ in 0..200 {
            let field = GradientField::sample(&cfg, &mut rng);
            for &(x, y) in &[(0.0, 0.0), (1.0, 1.0), (0.5, 0.5), (0.25, 0.75)] {
                for p in Parameter::ALL {
                    assert!(field.offset_sigmas(p, x, y).abs() <= bound);
                }
            }
        }
    }

    #[test]
    fn linear_component_is_antisymmetric_about_centre() {
        let cfg = GradientConfig {
            radial_sigma: 0.0,
            ..GradientConfig::default()
        };
        let mut rng = SmallRng::seed_from_u64(2);
        let field = GradientField::sample(&cfg, &mut rng);
        let p = Parameter::GateLength;
        let a = field.offset_sigmas(p, 0.1, 0.3);
        let b = field.offset_sigmas(p, 0.9, 0.7);
        assert!((a + b).abs() < 1e-9, "a={a} b={b}");
    }

    #[test]
    fn device_and_interconnect_weights_scale_independently() {
        let cfg = GradientConfig {
            linear_sigma: 1.0,
            radial_sigma: 0.0,
            device_weight: 1.0,
            interconnect_weight: 0.5,
        };
        let mut rng = SmallRng::seed_from_u64(3);
        let field = GradientField::sample(&cfg, &mut rng);
        let dev = field.offset_sigmas(Parameter::ThresholdVoltage, 0.9, 0.9);
        let wire = field.offset_sigmas(Parameter::MetalWidth, 0.9, 0.9);
        if dev != 0.0 {
            assert!((wire / dev - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn apply_shifts_parameters_by_field_value() {
        let cfg = GradientConfig::default();
        let mut rng = SmallRng::seed_from_u64(4);
        let field = GradientField::sample(&cfg, &mut rng);
        let base = ParameterSet::nominal();
        let shifted = field.apply(&base, 0.8, 0.2);
        for p in Parameter::ALL {
            let expected = field.offset_sigmas(p, 0.8, 0.2);
            assert!((shifted.deviation_sigmas(p) - expected).abs() < 1e-9, "{p}");
        }
    }

    #[test]
    fn different_dies_get_different_fields() {
        let cfg = GradientConfig::default();
        let mut rng = SmallRng::seed_from_u64(5);
        let a = GradientField::sample(&cfg, &mut rng);
        let b = GradientField::sample(&cfg, &mut rng);
        assert_ne!(a, b);
    }
}
