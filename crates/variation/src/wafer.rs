//! Wafer-level structure: dies on a grid with the classic radial
//! ("bull's-eye") systematic component on top of the per-die sampling.
//!
//! The paper samples dies independently (§3) — adequate for yield
//! *fractions*. Real wafers add an inter-die systematic: process
//! parameters drift from the wafer centre to the edge, so failures
//! cluster in rings. This module provides that layer, so wafer maps and
//! ring-yield statistics can be studied with the same die model.

use crate::montecarlo::{mix_seed, MonteCarlo};
use crate::params::Parameter;
use crate::sample::{CacheVariation, VariationConfig};

/// Configuration of a wafer.
///
/// # Examples
///
/// ```
/// use yac_variation::wafer::WaferConfig;
///
/// let cfg = WaferConfig::default();
/// assert!(cfg.diameter_dies >= 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaferConfig {
    /// Dies across the wafer diameter.
    pub diameter_dies: usize,
    /// Systematic radial drift, in σ units of each device parameter, from
    /// the wafer centre (−`radial_sigma`/2) to the edge
    /// (+`radial_sigma`/2). Positive values make edge dies slower (longer
    /// channels, higher V_t) and centre dies faster and leakier; negative
    /// values flip the pattern.
    pub radial_sigma: f64,
    /// Per-die sampling configuration.
    pub variation: VariationConfig,
}

impl Default for WaferConfig {
    /// A 300 mm-flavoured wafer: 26 dies across, a 1σ centre-to-edge
    /// drift.
    fn default() -> Self {
        WaferConfig {
            diameter_dies: 26,
            radial_sigma: 1.0,
            variation: VariationConfig::default(),
        }
    }
}

/// One die position on the wafer with its sampled variation.
#[derive(Debug, Clone, PartialEq)]
pub struct WaferDie {
    /// Column on the grid (0-based).
    pub col: usize,
    /// Row on the grid (0-based).
    pub row: usize,
    /// Normalised distance from the wafer centre (0 centre, 1 edge).
    pub radius: f64,
    /// The die's variation sample, radial drift included.
    pub variation: CacheVariation,
}

/// A sampled wafer.
///
/// # Examples
///
/// ```
/// use yac_variation::wafer::{Wafer, WaferConfig};
///
/// let wafer = Wafer::sample(&WaferConfig::default(), 7);
/// assert!(wafer.dies.len() > 300, "a 26-die-wide disc holds ~530 dies");
/// assert!(wafer.dies.iter().all(|d| d.radius <= 1.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Wafer {
    /// All dies inside the wafer disc, row-major.
    pub dies: Vec<WaferDie>,
    /// The configuration the wafer was sampled with.
    pub config: WaferConfig,
}

impl Wafer {
    /// Samples a full wafer deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (fewer than 4 dies
    /// across, or an invalid per-die configuration).
    #[must_use]
    pub fn sample(config: &WaferConfig, seed: u64) -> Self {
        assert!(config.diameter_dies >= 4, "wafer too small");
        let mc = MonteCarlo::new(config.variation);
        let n = config.diameter_dies;
        let centre = (n as f64 - 1.0) / 2.0;
        let max_r = n as f64 / 2.0;
        let mut dies = Vec::new();
        for row in 0..n {
            for col in 0..n {
                let dx = col as f64 - centre;
                let dy = row as f64 - centre;
                let radius = (dx * dx + dy * dy).sqrt() / max_r;
                if radius > 1.0 {
                    continue; // outside the disc
                }
                let mut variation = mc.sample_one(seed, mix_seed(row as u64, col as u64));
                // Radial systematic: devices drift slow toward the edge.
                let drift = config.radial_sigma * (radius * radius - 0.5);
                if drift != 0.0 {
                    shift_devices(&mut variation, drift);
                }
                dies.push(WaferDie {
                    col,
                    row,
                    radius,
                    variation,
                });
            }
        }
        Wafer {
            dies,
            config: *config,
        }
    }

    /// Dies grouped into `rings` equal-width radius bands (index 0 =
    /// centre). Returns the die indices per band.
    #[must_use]
    pub fn rings(&self, rings: usize) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); rings.max(1)];
        for (i, die) in self.dies.iter().enumerate() {
            let band = ((die.radius * rings as f64) as usize).min(rings - 1);
            out[band].push(i);
        }
        out
    }
}

/// Shifts the device parameters (gate length, threshold voltage) of every
/// structure of a die by `delta_sigmas`.
fn shift_devices(die: &mut CacheVariation, delta_sigmas: f64) {
    let shift = |set: &mut crate::params::ParameterSet| {
        *set = set
            .with_offset_sigmas(Parameter::GateLength, delta_sigmas)
            .with_offset_sigmas(Parameter::ThresholdVoltage, delta_sigmas);
    };
    for way in &mut die.ways {
        shift(&mut way.base);
        shift(&mut way.structures.decoder);
        shift(&mut way.structures.precharge);
        shift(&mut way.structures.cell_array);
        shift(&mut way.structures.sense_amp);
        shift(&mut way.structures.output_driver);
        for region in &mut way.regions {
            shift(&mut region.cell_array);
            shift(&mut region.interconnect);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wafer_is_a_disc() {
        let wafer = Wafer::sample(&WaferConfig::default(), 1);
        let n = wafer.config.diameter_dies as f64;
        // Disc area fraction of the bounding square is pi/4.
        let expected = n * n * std::f64::consts::FRAC_PI_4;
        let count = wafer.dies.len() as f64;
        assert!(
            (count - expected).abs() / expected < 0.1,
            "{count} dies vs ~{expected}"
        );
    }

    #[test]
    fn sampling_is_deterministic() {
        let cfg = WaferConfig::default();
        assert_eq!(Wafer::sample(&cfg, 5), Wafer::sample(&cfg, 5));
        assert_ne!(Wafer::sample(&cfg, 5), Wafer::sample(&cfg, 6));
    }

    #[test]
    fn edge_dies_are_slower_on_average() {
        let cfg = WaferConfig {
            radial_sigma: 2.0,
            ..WaferConfig::default()
        };
        let wafer = Wafer::sample(&cfg, 3);
        let mean_vt = |dies: &[usize]| {
            dies.iter()
                .map(|&i| wafer.dies[i].variation.ways[0].base.v_t_mv)
                .sum::<f64>()
                / dies.len() as f64
        };
        let rings = wafer.rings(3);
        let centre = mean_vt(&rings[0]);
        let edge = mean_vt(&rings[2]);
        assert!(
            edge > centre + 5.0,
            "edge Vt {edge} should exceed centre {centre}"
        );
    }

    #[test]
    fn zero_radial_means_no_position_dependence() {
        let cfg = WaferConfig {
            radial_sigma: 0.0,
            ..WaferConfig::default()
        };
        let wafer = Wafer::sample(&cfg, 9);
        let rings = wafer.rings(2);
        let mean_vt = |dies: &[usize]| {
            dies.iter()
                .map(|&i| wafer.dies[i].variation.ways[0].base.v_t_mv)
                .sum::<f64>()
                / dies.len() as f64
        };
        let diff = (mean_vt(&rings[0]) - mean_vt(&rings[1])).abs();
        assert!(diff < 3.0, "no systematic ring difference expected: {diff}");
    }

    #[test]
    fn rings_partition_the_dies() {
        let wafer = Wafer::sample(&WaferConfig::default(), 2);
        let rings = wafer.rings(4);
        let total: usize = rings.iter().map(Vec::len).sum();
        assert_eq!(total, wafer.dies.len());
        assert!(rings.iter().all(|r| !r.is_empty()));
    }

    #[test]
    #[should_panic(expected = "wafer too small")]
    fn tiny_wafer_rejected() {
        let cfg = WaferConfig {
            diameter_dies: 2,
            ..WaferConfig::default()
        };
        let _ = Wafer::sample(&cfg, 1);
    }
}
