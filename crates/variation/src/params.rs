//! The five process-variation sources modeled by the paper and their
//! nominal / 3σ values (Table 1 of the paper, after Nassif).
//!
//! All values are stored in the physical units of Table 1: gate length in
//! nanometres, threshold voltage in millivolts, and the three interconnect
//! geometry parameters in micrometres.

use std::fmt;

/// One of the five sources of process variation modeled in the paper.
///
/// The paper (§3) varies gate length and threshold voltage on devices and
/// metal width, metal thickness and inter-layer-dielectric thickness on
/// interconnect.
///
/// # Examples
///
/// ```
/// use yac_variation::Parameter;
///
/// let all = Parameter::ALL;
/// assert_eq!(all.len(), 5);
/// assert_eq!(Parameter::GateLength.nominal(), 45.0); // nm
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Parameter {
    /// Effective gate (channel) length `L_eff`, nanometres.
    GateLength,
    /// Device threshold voltage `V_t`, millivolts.
    ThresholdVoltage,
    /// Interconnect line width `W`, micrometres.
    MetalWidth,
    /// Interconnect metal thickness `T`, micrometres.
    MetalThickness,
    /// Inter-layer dielectric thickness `H`, micrometres.
    IldThickness,
}

impl Parameter {
    /// Every variation source, in Table 1 column order.
    pub const ALL: [Parameter; 5] = [
        Parameter::GateLength,
        Parameter::ThresholdVoltage,
        Parameter::MetalWidth,
        Parameter::MetalThickness,
        Parameter::IldThickness,
    ];

    /// Nominal (mean) value in the unit documented on each variant.
    #[must_use]
    pub fn nominal(self) -> f64 {
        match self {
            Parameter::GateLength => 45.0,        // nm
            Parameter::ThresholdVoltage => 220.0, // mV
            Parameter::MetalWidth => 0.25,        // um
            Parameter::MetalThickness => 0.55,    // um
            Parameter::IldThickness => 0.15,      // um
        }
    }

    /// The 3σ variation as a *fraction* of the nominal value (Table 1).
    ///
    /// For example gate length varies by ±10 % at 3σ, so this returns `0.10`.
    #[must_use]
    pub fn three_sigma_fraction(self) -> f64 {
        match self {
            Parameter::GateLength => 0.10,
            Parameter::ThresholdVoltage => 0.18,
            Parameter::MetalWidth => 0.33,
            Parameter::MetalThickness => 0.33,
            Parameter::IldThickness => 0.35,
        }
    }

    /// One standard deviation in absolute units.
    ///
    /// ```
    /// use yac_variation::Parameter;
    /// let s = Parameter::GateLength.sigma();
    /// assert!((s - 1.5).abs() < 1e-12); // 10% of 45nm is 4.5nm at 3 sigma
    /// ```
    #[must_use]
    pub fn sigma(self) -> f64 {
        self.nominal() * self.three_sigma_fraction() / 3.0
    }

    /// Short lowercase mnemonic used in reports (`leff`, `vt`, `w`, `t`, `h`).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            Parameter::GateLength => "leff",
            Parameter::ThresholdVoltage => "vt",
            Parameter::MetalWidth => "w",
            Parameter::MetalThickness => "t",
            Parameter::IldThickness => "h",
        }
    }
}

impl fmt::Display for Parameter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Parameter::GateLength => "gate length",
            Parameter::ThresholdVoltage => "threshold voltage",
            Parameter::MetalWidth => "metal width",
            Parameter::MetalThickness => "metal thickness",
            Parameter::IldThickness => "ILD thickness",
        };
        f.write_str(name)
    }
}

/// A concrete assignment of all five variation parameters, e.g. for one
/// circuit structure of one die.
///
/// Construct nominal values with [`ParameterSet::nominal`] and perturbed
/// values through the sampling APIs in [`crate::correlation`] and
/// [`crate::montecarlo`].
///
/// # Examples
///
/// ```
/// use yac_variation::{Parameter, ParameterSet};
///
/// let nominal = ParameterSet::nominal();
/// assert_eq!(nominal.get(Parameter::ThresholdVoltage), 220.0);
/// assert_eq!(nominal.deviation_sigmas(Parameter::ThresholdVoltage), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParameterSet {
    /// Effective gate length, nanometres.
    pub l_gate_nm: f64,
    /// Threshold voltage, millivolts.
    pub v_t_mv: f64,
    /// Metal line width, micrometres.
    pub metal_width_um: f64,
    /// Metal thickness, micrometres.
    pub metal_thickness_um: f64,
    /// Inter-layer dielectric thickness, micrometres.
    pub ild_thickness_um: f64,
}

impl ParameterSet {
    /// The nominal corner: every parameter at its Table 1 mean.
    #[must_use]
    pub fn nominal() -> Self {
        ParameterSet {
            l_gate_nm: Parameter::GateLength.nominal(),
            v_t_mv: Parameter::ThresholdVoltage.nominal(),
            metal_width_um: Parameter::MetalWidth.nominal(),
            metal_thickness_um: Parameter::MetalThickness.nominal(),
            ild_thickness_um: Parameter::IldThickness.nominal(),
        }
    }

    /// Reads one parameter by tag.
    #[must_use]
    pub fn get(&self, p: Parameter) -> f64 {
        match p {
            Parameter::GateLength => self.l_gate_nm,
            Parameter::ThresholdVoltage => self.v_t_mv,
            Parameter::MetalWidth => self.metal_width_um,
            Parameter::MetalThickness => self.metal_thickness_um,
            Parameter::IldThickness => self.ild_thickness_um,
        }
    }

    /// Writes one parameter by tag.
    pub fn set(&mut self, p: Parameter, value: f64) {
        match p {
            Parameter::GateLength => self.l_gate_nm = value,
            Parameter::ThresholdVoltage => self.v_t_mv = value,
            Parameter::MetalWidth => self.metal_width_um = value,
            Parameter::MetalThickness => self.metal_thickness_um = value,
            Parameter::IldThickness => self.ild_thickness_um = value,
        }
    }

    /// How far a parameter sits from nominal, in units of its σ.
    ///
    /// Positive values mean above nominal.
    #[must_use]
    pub fn deviation_sigmas(&self, p: Parameter) -> f64 {
        (self.get(p) - p.nominal()) / p.sigma()
    }

    /// Relative deviation `(value - nominal) / nominal` of one parameter.
    #[must_use]
    pub fn relative_deviation(&self, p: Parameter) -> f64 {
        (self.get(p) - p.nominal()) / p.nominal()
    }

    /// Returns a copy with `delta_sigmas * sigma(p)` added to parameter `p`,
    /// clamped so the parameter stays strictly positive.
    #[must_use]
    pub fn with_offset_sigmas(mut self, p: Parameter, delta_sigmas: f64) -> Self {
        let v = (self.get(p) + delta_sigmas * p.sigma()).max(p.nominal() * 1e-3);
        self.set(p, v);
        self
    }

    /// Euclidean distance from another set in σ-normalised space.
    ///
    /// Useful to check that tightly correlated structures ended up close.
    #[must_use]
    pub fn sigma_distance(&self, other: &ParameterSet) -> f64 {
        Parameter::ALL
            .iter()
            .map(|&p| {
                let d = (self.get(p) - other.get(p)) / p.sigma();
                d * d
            })
            .sum::<f64>()
            .sqrt()
    }
}

impl Default for ParameterSet {
    fn default() -> Self {
        Self::nominal()
    }
}

impl fmt::Display for ParameterSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Leff={:.2}nm Vt={:.1}mV W={:.3}um T={:.3}um H={:.3}um",
            self.l_gate_nm,
            self.v_t_mv,
            self.metal_width_um,
            self.metal_thickness_um,
            self.ild_thickness_um
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_nominals_match_paper() {
        assert_eq!(Parameter::GateLength.nominal(), 45.0);
        assert_eq!(Parameter::ThresholdVoltage.nominal(), 220.0);
        assert_eq!(Parameter::MetalWidth.nominal(), 0.25);
        assert_eq!(Parameter::MetalThickness.nominal(), 0.55);
        assert_eq!(Parameter::IldThickness.nominal(), 0.15);
    }

    #[test]
    fn table1_three_sigma_fractions_match_paper() {
        assert_eq!(Parameter::GateLength.three_sigma_fraction(), 0.10);
        assert_eq!(Parameter::ThresholdVoltage.three_sigma_fraction(), 0.18);
        assert_eq!(Parameter::MetalWidth.three_sigma_fraction(), 0.33);
        assert_eq!(Parameter::MetalThickness.three_sigma_fraction(), 0.33);
        assert_eq!(Parameter::IldThickness.three_sigma_fraction(), 0.35);
    }

    #[test]
    fn sigma_is_one_third_of_three_sigma() {
        for p in Parameter::ALL {
            let expected = p.nominal() * p.three_sigma_fraction() / 3.0;
            assert!((p.sigma() - expected).abs() < 1e-12, "{p}");
        }
    }

    #[test]
    fn get_set_roundtrip() {
        let mut s = ParameterSet::nominal();
        for (i, p) in Parameter::ALL.into_iter().enumerate() {
            s.set(p, 1.0 + i as f64);
            assert_eq!(s.get(p), 1.0 + i as f64);
        }
    }

    #[test]
    fn deviation_sigmas_is_zero_at_nominal() {
        let s = ParameterSet::nominal();
        for p in Parameter::ALL {
            assert_eq!(s.deviation_sigmas(p), 0.0);
        }
    }

    #[test]
    fn with_offset_moves_by_sigma() {
        let s = ParameterSet::nominal().with_offset_sigmas(Parameter::GateLength, 2.0);
        assert!((s.deviation_sigmas(Parameter::GateLength) - 2.0).abs() < 1e-12);
        // Other parameters untouched.
        assert_eq!(s.deviation_sigmas(Parameter::ThresholdVoltage), 0.0);
    }

    #[test]
    fn with_offset_never_goes_nonpositive() {
        let s = ParameterSet::nominal().with_offset_sigmas(Parameter::GateLength, -1e6);
        assert!(s.l_gate_nm > 0.0);
    }

    #[test]
    fn sigma_distance_zero_for_identical_sets() {
        let s = ParameterSet::nominal();
        assert_eq!(s.sigma_distance(&s), 0.0);
    }

    #[test]
    fn sigma_distance_counts_each_axis() {
        let a = ParameterSet::nominal();
        let b = a.with_offset_sigmas(Parameter::MetalWidth, 3.0);
        assert!((a.sigma_distance(&b) - 3.0).abs() < 1e-9);
        let c = b.with_offset_sigmas(Parameter::IldThickness, 4.0);
        assert!((a.sigma_distance(&c) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", ParameterSet::nominal()).is_empty());
        assert!(!format!("{}", Parameter::GateLength).is_empty());
    }
}
