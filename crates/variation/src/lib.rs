//! Process-variation modeling and Monte Carlo population generation for
//! yield analysis, following §2–§3 of *Yield-Aware Cache Architectures*
//! (Ozdemir et al., MICRO 2006).
//!
//! The crate models the five variation sources of the paper's Table 1
//! (gate length, threshold voltage, metal width, metal thickness, ILD
//! thickness), the hierarchical spatial-correlation recipe built on
//! *correlation factors* (way mesh → rows → bits), and a systematic
//! per-die gradient field representing the repeatable component of
//! intra-die variation.
//!
//! # Examples
//!
//! Generate a small population of varied cache dies:
//!
//! ```
//! use yac_variation::{MonteCarlo, VariationConfig, Parameter};
//!
//! let mc = MonteCarlo::new(VariationConfig::default());
//! let dies = mc.generate(100, 2006);
//!
//! // Threshold voltages spread around the 220 mV nominal:
//! let vts: Vec<f64> = dies.iter().map(|d| d.ways[0].base.v_t_mv).collect();
//! let summary = yac_variation::stats::Summary::from_slice(&vts).unwrap();
//! assert!((summary.mean - Parameter::ThresholdVoltage.nominal()).abs() < 15.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod correlation;
pub mod dist;
pub mod error;
pub mod faults;
pub mod gradient;
pub mod montecarlo;
pub mod params;
pub mod sample;
pub mod stats;
pub mod wafer;

pub use correlation::{CorrelationFactor, InvalidFactorError, MeshPosition};
pub use error::{ConfigError, SampleError, SampleSite};
pub use faults::{expected_error_class, FaultKind, FaultPlan, InvalidRateError};
pub use gradient::{GradientConfig, GradientField};
pub use montecarlo::{GenerationOutcome, MonteCarlo, SampleFailure};
pub use params::{Parameter, ParameterSet};
pub use sample::{CacheVariation, RegionVariation, StructureParams, VariationConfig, WayVariation};
pub use wafer::{Wafer, WaferConfig, WaferDie};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<super::ParameterSet>();
        assert_send_sync::<super::CacheVariation>();
        assert_send_sync::<super::MonteCarlo>();
        assert_send_sync::<super::GradientField>();
    }
}
