//! Per-die variation samples: the full parameter assignment for one
//! manufactured cache instance.
//!
//! Sampling follows §3 of the paper:
//!
//! 1. way 0 draws its parameters from the full Table 1 ranges;
//! 2. the other ways re-sample around way 0 with the 2×2-mesh correlation
//!    factors (vertical 0.45, horizontal 0.375, diagonal 0.7125);
//! 3. within a way, each circuit structure (decoder, precharge, cell array,
//!    sense amplifiers, output drivers) gets its own locally-refined values;
//! 4. each horizontal region (group of rows) refines the cell-array and
//!    local-interconnect values with the row factor (0.05);
//! 5. a die-wide systematic [`GradientField`] adds the location-dependent
//!    component on top.

use crate::correlation::{CorrelationFactor, MeshPosition};
use crate::error::{ConfigError, SampleError, SampleSite};
use crate::gradient::{GradientConfig, GradientField};
use crate::params::{Parameter, ParameterSet};
use rand::Rng;

/// Parameters of each distinct circuit structure within one cache way.
///
/// These are the five structures the paper perturbs individually (§3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StructureParams {
    /// Row/address decoder chain.
    pub decoder: ParameterSet,
    /// Bitline precharge circuitry.
    pub precharge: ParameterSet,
    /// The SRAM cell array itself.
    pub cell_array: ParameterSet,
    /// Sense amplifiers.
    pub sense_amp: ParameterSet,
    /// Output drivers.
    pub output_driver: ParameterSet,
}

impl StructureParams {
    /// All structures at the same parameter values.
    #[must_use]
    pub fn uniform(p: ParameterSet) -> Self {
        StructureParams {
            decoder: p,
            precharge: p,
            cell_array: p,
            sense_amp: p,
            output_driver: p,
        }
    }

    fn refine_from<R: Rng + ?Sized>(
        base: &ParameterSet,
        factor: CorrelationFactor,
        rng: &mut R,
    ) -> Self {
        StructureParams {
            decoder: factor.refine(base, rng),
            precharge: factor.refine(base, rng),
            cell_array: factor.refine(base, rng),
            sense_amp: factor.refine(base, rng),
            output_driver: factor.refine(base, rng),
        }
    }
}

/// Variation assignment for one horizontal region (a contiguous group of
/// rows) of one way.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionVariation {
    /// Cell parameters of the rows in this region.
    pub cell_array: ParameterSet,
    /// Local wordline / bitline-segment interconnect parameters.
    pub interconnect: ParameterSet,
    /// Extreme-value excursion of the region's worst cell's threshold
    /// voltage, in millivolts, beyond the deterministic worst-cell margin.
    /// The maximum of very many random-dopant fluctuations is
    /// Gumbel-distributed; this is what makes *one* region of a way
    /// catastrophically slow while its siblings stay fine.
    pub worst_cell_extra_mv: f64,
}

/// Variation assignment for one cache way.
#[derive(Debug, Clone, PartialEq)]
pub struct WayVariation {
    /// Placement of the way on the 2×2 mesh.
    pub position: MeshPosition,
    /// The way-level parameter draw (before structure refinement).
    pub base: ParameterSet,
    /// Per-structure refinements.
    pub structures: StructureParams,
    /// Per-horizontal-region refinements, index 0 = rows closest to the
    /// decoder/sense amplifiers, last = farthest rows.
    pub regions: Vec<RegionVariation>,
}

impl WayVariation {
    /// Number of horizontal regions in this way.
    #[must_use]
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }
}

/// Configuration of the die-sampling process.
///
/// # Examples
///
/// ```
/// use yac_variation::VariationConfig;
///
/// let cfg = VariationConfig::default();
/// assert_eq!(cfg.ways, 4);
/// assert_eq!(cfg.regions_per_way, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationConfig {
    /// Number of ways (the paper's cache has 4).
    pub ways: usize,
    /// Number of horizontal regions per way (the paper's H-YAPD uses 4).
    pub regions_per_way: usize,
    /// Correlation factor between structures within a way. The paper fixes
    /// rows at 0.05 and ways at ≥0.375 but leaves the structure level
    /// implicit; 0.12 sits between those scales.
    pub structure_factor: CorrelationFactor,
    /// Systematic spatial field configuration.
    pub gradient: GradientConfig,
    /// σ (in units of each parameter's Table 1 σ) of the per-die,
    /// per-region systematic offset **shared by every way**. This is the
    /// §4.2 premise made explicit: "for a given process variation, either
    /// all the upper-most rows of the ways or all the middle rows will
    /// violate the delay constraint". Applied with the gradient's
    /// device/interconnect weights.
    pub region_systematic_sigma: f64,
    /// Gumbel scale, in millivolts, of each region's worst-cell V_t
    /// excursion (independent per way and region).
    pub worst_cell_spread_mv: f64,
}

impl Default for VariationConfig {
    fn default() -> Self {
        VariationConfig {
            ways: 4,
            regions_per_way: 4,
            structure_factor: CorrelationFactor::new(0.12).expect("0.12 is a valid factor"),
            gradient: GradientConfig::default(),
            region_systematic_sigma: 0.6,
            worst_cell_spread_mv: 12.0,
        }
    }
}

impl VariationConfig {
    /// Validates structural invariants (at least one way and one region).
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] naming the violated invariant.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.ways == 0 {
            return Err(ConfigError::NoWays);
        }
        if self.regions_per_way == 0 {
            return Err(ConfigError::NoRegions);
        }
        if self.ways > 4 {
            return Err(ConfigError::TooManyWays);
        }
        if !(self.region_systematic_sigma.is_finite() && self.region_systematic_sigma >= 0.0) {
            return Err(ConfigError::BadRegionSigma);
        }
        if !(self.worst_cell_spread_mv.is_finite() && self.worst_cell_spread_mv >= 0.0) {
            return Err(ConfigError::BadWorstCellSpread);
        }
        Ok(())
    }
}

/// The complete variation assignment for one manufactured die.
///
/// # Examples
///
/// ```
/// use rand::{rngs::SmallRng, SeedableRng};
/// use yac_variation::{CacheVariation, VariationConfig};
///
/// let mut rng = SmallRng::seed_from_u64(1);
/// let die = CacheVariation::sample(&VariationConfig::default(), &mut rng);
/// assert_eq!(die.ways.len(), 4);
/// assert_eq!(die.ways[0].regions.len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CacheVariation {
    /// The die's systematic spatial field.
    pub field: GradientField,
    /// Per-way assignments; index = way number.
    pub ways: Vec<WayVariation>,
}

impl CacheVariation {
    /// Samples one die according to the paper's §3 procedure.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`VariationConfig::validate`].
    pub fn sample<R: Rng + ?Sized>(config: &VariationConfig, rng: &mut R) -> Self {
        config.validate().expect("invalid variation configuration");
        let field = GradientField::sample(&config.gradient, rng);

        // Per-die systematic offsets shared by the same region index of
        // every way (in sigma units, weighted like the gradient field).
        let region_offsets: Vec<f64> = (0..config.regions_per_way)
            .map(|_| crate::dist::standard_normal(rng) * config.region_systematic_sigma)
            .collect();

        // Step 1: way 0 from the full Table 1 range.
        let way0_base = CorrelationFactor::INDEPENDENT.refine(&ParameterSet::nominal(), rng);

        let mut ways = Vec::with_capacity(config.ways);
        for w in 0..config.ways {
            let position = MeshPosition::for_way(w);
            // Step 2: mesh-correlated way bases.
            let factor = MeshPosition::for_way(0).factor_to(position);
            let random_base = if w == 0 {
                way0_base
            } else {
                factor.refine(&way0_base, rng)
            };
            // Step 5 (way-level part): systematic field at the way centre.
            let (wx, wy) = position.die_coordinates();
            let base = field.apply(&random_base, wx, wy);

            // Step 3: per-structure refinement.
            let structures = StructureParams::refine_from(&base, config.structure_factor, rng);

            // Step 4: per-region refinement + the *differential* systematic
            // offset between the region's location and the way centre. The
            // differential is identical across ways for a given region
            // index, which is exactly the cross-way row correlation that
            // H-YAPD exploits.
            let mut regions = Vec::with_capacity(config.regions_per_way);
            // Indexed loop: `r` feeds both the coordinate helper and the
            // shared offset table.
            #[allow(clippy::needless_range_loop)]
            for r in 0..config.regions_per_way {
                let (rx, ry) = region_coordinates(position, r, config.regions_per_way);
                let mut cell = CorrelationFactor::ROW.refine(&structures.cell_array, rng);
                let mut wire = CorrelationFactor::ROW.refine(&structures.cell_array, rng);
                for p in Parameter::ALL {
                    let weight = match p {
                        Parameter::GateLength | Parameter::ThresholdVoltage => {
                            config.gradient.device_weight
                        }
                        _ => config.gradient.interconnect_weight,
                    };
                    let delta = field.offset_sigmas(p, rx, ry) - field.offset_sigmas(p, wx, wy)
                        + weight * region_offsets[r];
                    cell = cell.with_offset_sigmas(p, delta);
                    wire = wire.with_offset_sigmas(p, delta);
                }
                regions.push(RegionVariation {
                    cell_array: cell,
                    interconnect: wire,
                    worst_cell_extra_mv: crate::dist::gumbel(rng, config.worst_cell_spread_mv),
                });
            }

            ways.push(WayVariation {
                position,
                base,
                structures,
                regions,
            });
        }

        CacheVariation { field, ways }
    }

    /// Number of ways on the die.
    #[must_use]
    pub fn way_count(&self) -> usize {
        self.ways.len()
    }

    /// Number of horizontal regions per way.
    #[must_use]
    pub fn region_count(&self) -> usize {
        self.ways.first().map_or(0, WayVariation::region_count)
    }

    /// Checks that every parameter on the die is physical: finite
    /// everywhere, and strictly positive for the four dimension-like
    /// parameters (threshold voltage only has to be finite).
    ///
    /// A die straight out of [`CacheVariation::sample`] always passes; the
    /// checked Monte Carlo generators use this to quarantine dies that a
    /// fault plan (or a future sampler bug) has corrupted before they can
    /// poison downstream circuit evaluation with NaNs.
    ///
    /// # Errors
    ///
    /// Returns the first [`SampleError`] found, scanning ways in order and
    /// within each way: base, structures, then regions.
    pub fn validate(&self) -> Result<(), SampleError> {
        fn check(set: &ParameterSet, way: usize, site: SampleSite) -> Result<(), SampleError> {
            for parameter in Parameter::ALL {
                let value = set.get(parameter);
                let physical = if parameter == Parameter::ThresholdVoltage {
                    value.is_finite()
                } else {
                    value.is_finite() && value > 0.0
                };
                if !physical {
                    return Err(SampleError::BadParameter {
                        way,
                        site,
                        parameter,
                        value,
                    });
                }
            }
            Ok(())
        }

        if self.ways.is_empty() {
            return Err(SampleError::NoWays);
        }
        for (w, way) in self.ways.iter().enumerate() {
            if way.regions.is_empty() {
                return Err(SampleError::NoRegions { way: w });
            }
            check(&way.base, w, SampleSite::Base)?;
            check(&way.structures.decoder, w, SampleSite::Decoder)?;
            check(&way.structures.precharge, w, SampleSite::Precharge)?;
            check(&way.structures.cell_array, w, SampleSite::CellArray)?;
            check(&way.structures.sense_amp, w, SampleSite::SenseAmp)?;
            check(&way.structures.output_driver, w, SampleSite::OutputDriver)?;
            for (r, region) in way.regions.iter().enumerate() {
                check(&region.cell_array, w, SampleSite::RegionCells(r))?;
                check(&region.interconnect, w, SampleSite::RegionInterconnect(r))?;
                if !region.worst_cell_extra_mv.is_finite() {
                    return Err(SampleError::BadWorstCell {
                        way: w,
                        region: r,
                        value_mv: region.worst_cell_extra_mv,
                    });
                }
            }
        }
        Ok(())
    }
}

/// Die coordinates of the centre of region `r` within the way tile at
/// `position`, for `n` regions stacked vertically inside the tile.
fn region_coordinates(position: MeshPosition, r: usize, n: usize) -> (f64, f64) {
    let x0 = 0.5 * f64::from(position.col);
    let y0 = 0.5 * f64::from(position.row);
    let x = x0 + 0.25;
    let y = y0 + 0.5 * ((r as f64 + 0.5) / n as f64);
    (x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn sample_default(seed: u64) -> CacheVariation {
        let mut rng = SmallRng::seed_from_u64(seed);
        CacheVariation::sample(&VariationConfig::default(), &mut rng)
    }

    #[test]
    fn structure_matches_configuration() {
        let die = sample_default(1);
        assert_eq!(die.way_count(), 4);
        assert_eq!(die.region_count(), 4);
        for w in &die.ways {
            assert_eq!(w.region_count(), 4);
        }
    }

    #[test]
    fn config_validation_rejects_degenerate_configs() {
        let mut cfg = VariationConfig {
            ways: 0,
            ..VariationConfig::default()
        };
        assert!(cfg.validate().is_err());
        cfg.ways = 5;
        assert!(cfg.validate().is_err());
        cfg.ways = 4;
        cfg.regions_per_way = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn ways_are_correlated_but_not_identical() {
        let mut identical = 0;
        let mut total_dist = 0.0;
        let n = 200;
        for seed in 0..n {
            let die = sample_default(seed);
            let d = die.ways[0].base.sigma_distance(&die.ways[1].base);
            if d == 0.0 {
                identical += 1;
            }
            total_dist += d;
        }
        assert_eq!(identical, 0, "ways should practically never coincide");
        let mean = total_dist / n as f64;
        // Fully independent 5-dim draws would average sqrt(2)*E[chi_5] ~ 2.9+;
        // mesh factors below 1 must pull this clearly down.
        assert!(mean < 2.5, "mean way0-way1 distance {mean} too large");
        assert!(
            mean > 0.1,
            "mean way0-way1 distance {mean} implausibly small"
        );
    }

    #[test]
    fn vertical_neighbour_more_correlated_than_diagonal() {
        let mut d_vert = 0.0;
        let mut d_diag = 0.0;
        let cfg = VariationConfig {
            gradient: GradientConfig::disabled(),
            ..VariationConfig::default()
        };
        for seed in 0..400 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let die = CacheVariation::sample(&cfg, &mut rng);
            d_vert += die.ways[0].base.sigma_distance(&die.ways[1].base);
            d_diag += die.ways[0].base.sigma_distance(&die.ways[3].base);
        }
        assert!(
            d_vert < d_diag,
            "vertical factor 0.45 must correlate more than diagonal 0.7125 ({d_vert} vs {d_diag})"
        );
    }

    #[test]
    fn regions_hug_their_way() {
        let cfg = VariationConfig {
            gradient: GradientConfig::disabled(),
            ..VariationConfig::default()
        };
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..50 {
            let die = CacheVariation::sample(&cfg, &mut rng);
            for way in &die.ways {
                for region in &way.regions {
                    let d = region.cell_array.sigma_distance(&way.structures.cell_array);
                    // Row factor is 0.05, so the per-axis window is 0.15 sigma;
                    // 5 axes bound the distance by sqrt(5)*0.15 ~ 0.34.
                    assert!(d < 0.4, "region strayed {d} sigma from its way");
                }
            }
        }
    }

    #[test]
    fn region_systematic_offsets_align_across_ways() {
        // With the gradient enabled and row noise present, the *ordering* of
        // regions by Vt must still agree between ways far more often than
        // chance: that is the H-YAPD premise.
        let cfg = VariationConfig::default();
        let mut agree = 0;
        let mut total = 0;
        for seed in 0..300 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let die = CacheVariation::sample(&cfg, &mut rng);
            let extreme_region = |w: &WayVariation| {
                let mut best = 0;
                for (i, r) in w.regions.iter().enumerate() {
                    let v = r.cell_array.v_t_mv - w.structures.cell_array.v_t_mv;
                    let bv = w.regions[best].cell_array.v_t_mv - w.structures.cell_array.v_t_mv;
                    if v < bv {
                        best = i;
                    }
                }
                best
            };
            let r0 = extreme_region(&die.ways[0]);
            for w in &die.ways[1..] {
                total += 1;
                if extreme_region(w) == r0 {
                    agree += 1;
                }
            }
        }
        let rate = f64::from(agree) / f64::from(total);
        assert!(
            rate > 0.31,
            "lowest-Vt region should coincide across ways above chance (rate = {rate}, chance = 0.25)"
        );
    }

    #[test]
    fn region_coordinates_stay_inside_way_tile() {
        for w in 0..4 {
            let pos = MeshPosition::for_way(w);
            for r in 0..4 {
                let (x, y) = region_coordinates(pos, r, 4);
                let x0 = 0.5 * f64::from(pos.col);
                let y0 = 0.5 * f64::from(pos.row);
                assert!(x >= x0 && x <= x0 + 0.5);
                assert!(y >= y0 && y <= y0 + 0.5);
            }
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let a = sample_default(99);
        let b = sample_default(99);
        assert_eq!(a, b);
        let c = sample_default(100);
        assert_ne!(a, c);
    }
}
