//! Reproducible, parallel Monte Carlo population generation.
//!
//! The paper simulates 2000 cache instances (§5.1). Each instance here is
//! seeded independently via a SplitMix64 stream derived from the study seed
//! and the chip index, so the population is byte-identical regardless of
//! thread count.

use crate::error::{ConfigError, SampleError};
use crate::faults::{FaultKind, FaultPlan};
use crate::sample::{CacheVariation, VariationConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Derives a well-mixed 64-bit seed from `(seed, index)` using SplitMix64.
///
/// # Examples
///
/// ```
/// use yac_variation::montecarlo::mix_seed;
///
/// assert_ne!(mix_seed(1, 0), mix_seed(1, 1));
/// assert_eq!(mix_seed(7, 3), mix_seed(7, 3));
/// ```
#[must_use]
pub fn mix_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(index.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(0x94d0_49bb_1331_11eb);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A Monte Carlo population generator over [`CacheVariation`] samples.
///
/// # Examples
///
/// ```
/// use yac_variation::{MonteCarlo, VariationConfig};
///
/// let mc = MonteCarlo::new(VariationConfig::default());
/// let dies = mc.generate(16, 42);
/// assert_eq!(dies.len(), 16);
/// // Reproducible:
/// assert_eq!(dies, mc.generate(16, 42));
/// ```
#[derive(Debug, Clone)]
pub struct MonteCarlo {
    config: VariationConfig,
}

/// One quarantined chip from a checked generation run.
///
/// Carries everything needed to reproduce the failure in isolation: the
/// study seed, the chip's stream index, and the typed reason.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleFailure {
    /// The chip's index within the study stream.
    pub index: u64,
    /// The study seed the stream was rooted at.
    pub seed: u64,
    /// Why the chip was quarantined.
    pub error: SampleError,
}

/// What a checked generation produced: the valid dies plus a quarantine
/// list of everything that failed, both ascending by chip index.
///
/// `dies.len() + failures.len()` always equals the requested count, and
/// the partition is byte-identical regardless of thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerationOutcome {
    /// `(index, die)` for every chip that validated.
    pub dies: Vec<(u64, CacheVariation)>,
    /// Quarantined chips.
    pub failures: Vec<SampleFailure>,
}

impl MonteCarlo {
    /// Creates a generator for the given die configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`VariationConfig::validate`]). Use [`MonteCarlo::try_new`] to
    /// handle the error instead.
    #[must_use]
    pub fn new(config: VariationConfig) -> Self {
        config.validate().expect("invalid variation configuration");
        MonteCarlo { config }
    }

    /// Fallible counterpart of [`MonteCarlo::new`].
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] if the configuration is invalid.
    pub fn try_new(config: VariationConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(MonteCarlo { config })
    }

    /// The configuration the generator was built with.
    #[must_use]
    pub fn config(&self) -> &VariationConfig {
        &self.config
    }

    /// Samples the die at `index` of the stream rooted at `seed`.
    #[must_use]
    pub fn sample_one(&self, seed: u64, index: u64) -> CacheVariation {
        let mut rng = SmallRng::seed_from_u64(mix_seed(seed, index));
        CacheVariation::sample(&self.config, &mut rng)
    }

    /// Generates `count` dies, splitting the work across available cores.
    ///
    /// The result is identical to calling [`MonteCarlo::sample_one`] for
    /// indices `0..count` sequentially.
    #[must_use]
    pub fn generate(&self, count: usize, seed: u64) -> Vec<CacheVariation> {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(count.max(1));
        if threads <= 1 || count < 32 {
            return (0..count)
                .map(|i| self.sample_one(seed, i as u64))
                .collect();
        }

        let mut out: Vec<Option<CacheVariation>> = vec![None; count];
        let chunk = count.div_ceil(threads);
        std::thread::scope(|scope| {
            for (t, slot) in out.chunks_mut(chunk).enumerate() {
                let start = t * chunk;
                let this = &*self;
                scope.spawn(move || {
                    for (off, s) in slot.iter_mut().enumerate() {
                        *s = Some(this.sample_one(seed, (start + off) as u64));
                    }
                });
            }
        });
        out.into_iter()
            .map(|s| s.expect("every slot filled by its worker"))
            .collect()
    }

    /// Samples the die at `index` with full fault isolation.
    ///
    /// Three layers of defence, applied in order:
    ///
    /// 1. A panicking sampler is caught ([`SampleError::Panicked`]) instead
    ///    of tearing down the worker thread.
    /// 2. The optional `plan` injects its deterministic corruption
    ///    ([`FaultKind::DropChip`] maps to [`SampleError::Dropped`]).
    /// 3. [`CacheVariation::validate`] rejects any non-physical value
    ///    before the die can reach circuit evaluation.
    ///
    /// # Errors
    ///
    /// Returns the [`SampleError`] that quarantines this chip.
    pub fn sample_one_checked(
        &self,
        seed: u64,
        index: u64,
        plan: Option<&FaultPlan>,
    ) -> Result<CacheVariation, SampleError> {
        let _timer = yac_obs::phase_ctx(yac_obs::Phase::Sample, yac_obs::TraceCtx::chip(index));
        let mut die = catch_unwind(AssertUnwindSafe(|| self.sample_one(seed, index)))
            .map_err(|payload| SampleError::Panicked(panic_message(payload.as_ref())))?;
        if let Some(plan) = plan {
            if plan.corrupt(&mut die, seed, index) == Some(FaultKind::DropChip) {
                return Err(SampleError::Dropped);
            }
        }
        die.validate()?;
        Ok(die)
    }

    /// Generates `count` dies with per-chip fault isolation, splitting the
    /// work across available cores.
    ///
    /// Chips that fail are quarantined into
    /// [`GenerationOutcome::failures`] instead of aborting the run; the
    /// surviving dies keep their stream indices so downstream consumers
    /// can line them up against checkpoints and fault plans.
    #[must_use]
    pub fn generate_checked(
        &self,
        count: usize,
        seed: u64,
        plan: Option<&FaultPlan>,
    ) -> GenerationOutcome {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        self.generate_checked_threads(count, seed, plan, threads)
    }

    /// [`MonteCarlo::generate_checked`] with an explicit worker count.
    ///
    /// The outcome is byte-identical for every `threads` value — each chip
    /// owns an independent SplitMix64 stream, so the partition into dies
    /// and failures depends only on `(count, seed, plan)`.
    #[must_use]
    pub fn generate_checked_threads(
        &self,
        count: usize,
        seed: u64,
        plan: Option<&FaultPlan>,
        threads: usize,
    ) -> GenerationOutcome {
        let threads = threads.clamp(1, count.max(1));
        let mut slots: Vec<Option<Result<CacheVariation, SampleError>>> = vec![None; count];
        if threads <= 1 || count < 32 {
            for (i, slot) in slots.iter_mut().enumerate() {
                *slot = Some(self.sample_one_checked(seed, i as u64, plan));
            }
        } else {
            let chunk = count.div_ceil(threads);
            std::thread::scope(|scope| {
                for (t, slot) in slots.chunks_mut(chunk).enumerate() {
                    let start = t * chunk;
                    let this = &*self;
                    scope.spawn(move || {
                        for (off, s) in slot.iter_mut().enumerate() {
                            *s = Some(this.sample_one_checked(seed, (start + off) as u64, plan));
                        }
                    });
                }
            });
        }

        let mut dies = Vec::with_capacity(count);
        let mut failures = Vec::new();
        for (i, slot) in slots.into_iter().enumerate() {
            let index = i as u64;
            match slot.expect("every slot filled by its worker") {
                Ok(die) => dies.push((index, die)),
                Err(error) => failures.push(SampleFailure { index, seed, error }),
            }
        }
        yac_obs::add(yac_obs::Metric::DiesSampled, dies.len() as u64);
        yac_obs::add(yac_obs::Metric::SampleFailures, failures.len() as u64);
        GenerationOutcome { dies, failures }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_seed_spreads_indices() {
        let s: Vec<u64> = (0..100).map(|i| mix_seed(0, i)).collect();
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), s.len());
    }

    #[test]
    fn mix_seed_depends_on_both_arguments() {
        assert_ne!(mix_seed(1, 5), mix_seed(2, 5));
        assert_ne!(mix_seed(1, 5), mix_seed(1, 6));
    }

    #[test]
    fn generate_is_reproducible_and_matches_sequential() {
        let mc = MonteCarlo::new(VariationConfig::default());
        // Over the 32-die parallel threshold to exercise the threaded path.
        let parallel = mc.generate(40, 7);
        let sequential: Vec<_> = (0..40).map(|i| mc.sample_one(7, i)).collect();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn different_seeds_give_different_populations() {
        let mc = MonteCarlo::new(VariationConfig::default());
        assert_ne!(mc.generate(4, 1), mc.generate(4, 2));
    }

    #[test]
    fn generate_zero_returns_empty() {
        let mc = MonteCarlo::new(VariationConfig::default());
        assert!(mc.generate(0, 1).is_empty());
    }

    #[test]
    fn checked_generation_without_faults_matches_generate() {
        let mc = MonteCarlo::new(VariationConfig::default());
        let out = mc.generate_checked(40, 7, None);
        assert!(out.failures.is_empty());
        let plain = mc.generate(40, 7);
        assert_eq!(out.dies.len(), plain.len());
        for (slot, (index, die)) in out.dies.iter().enumerate() {
            assert_eq!(*index, slot as u64);
            assert_eq!(die, &plain[slot]);
        }
    }

    #[test]
    fn checked_generation_is_thread_count_invariant() {
        let mc = MonteCarlo::new(VariationConfig::default());
        let plan = crate::faults::FaultPlan::new(0.25, 11).unwrap();
        let one = mc.generate_checked_threads(60, 5, Some(&plan), 1);
        let four = mc.generate_checked_threads(60, 5, Some(&plan), 4);
        assert_eq!(one, four);
        assert_eq!(one.dies.len() + one.failures.len(), 60);
        assert!(!one.failures.is_empty(), "25% of 60 should hit something");
    }

    #[test]
    fn try_new_rejects_bad_configs_with_typed_errors() {
        let cfg = VariationConfig {
            ways: 0,
            ..VariationConfig::default()
        };
        assert_eq!(
            MonteCarlo::try_new(cfg).unwrap_err(),
            crate::error::ConfigError::NoWays
        );
        assert!(MonteCarlo::try_new(VariationConfig::default()).is_ok());
    }

    #[test]
    fn chips_within_population_differ() {
        let mc = MonteCarlo::new(VariationConfig::default());
        let dies = mc.generate(8, 3);
        for i in 0..dies.len() {
            for j in (i + 1)..dies.len() {
                assert_ne!(dies[i], dies[j], "chips {i} and {j} identical");
            }
        }
    }
}
