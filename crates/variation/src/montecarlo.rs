//! Reproducible, parallel Monte Carlo population generation.
//!
//! The paper simulates 2000 cache instances (§5.1). Each instance here is
//! seeded independently via a SplitMix64 stream derived from the study seed
//! and the chip index, so the population is byte-identical regardless of
//! thread count.

use crate::sample::{CacheVariation, VariationConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Derives a well-mixed 64-bit seed from `(seed, index)` using SplitMix64.
///
/// # Examples
///
/// ```
/// use yac_variation::montecarlo::mix_seed;
///
/// assert_ne!(mix_seed(1, 0), mix_seed(1, 1));
/// assert_eq!(mix_seed(7, 3), mix_seed(7, 3));
/// ```
#[must_use]
pub fn mix_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(index.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(0x94d0_49bb_1331_11eb);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A Monte Carlo population generator over [`CacheVariation`] samples.
///
/// # Examples
///
/// ```
/// use yac_variation::{MonteCarlo, VariationConfig};
///
/// let mc = MonteCarlo::new(VariationConfig::default());
/// let dies = mc.generate(16, 42);
/// assert_eq!(dies.len(), 16);
/// // Reproducible:
/// assert_eq!(dies, mc.generate(16, 42));
/// ```
#[derive(Debug, Clone)]
pub struct MonteCarlo {
    config: VariationConfig,
}

impl MonteCarlo {
    /// Creates a generator for the given die configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`VariationConfig::validate`]).
    #[must_use]
    pub fn new(config: VariationConfig) -> Self {
        config.validate().expect("invalid variation configuration");
        MonteCarlo { config }
    }

    /// The configuration the generator was built with.
    #[must_use]
    pub fn config(&self) -> &VariationConfig {
        &self.config
    }

    /// Samples the die at `index` of the stream rooted at `seed`.
    #[must_use]
    pub fn sample_one(&self, seed: u64, index: u64) -> CacheVariation {
        let mut rng = SmallRng::seed_from_u64(mix_seed(seed, index));
        CacheVariation::sample(&self.config, &mut rng)
    }

    /// Generates `count` dies, splitting the work across available cores.
    ///
    /// The result is identical to calling [`MonteCarlo::sample_one`] for
    /// indices `0..count` sequentially.
    #[must_use]
    pub fn generate(&self, count: usize, seed: u64) -> Vec<CacheVariation> {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(count.max(1));
        if threads <= 1 || count < 32 {
            return (0..count)
                .map(|i| self.sample_one(seed, i as u64))
                .collect();
        }

        let mut out: Vec<Option<CacheVariation>> = vec![None; count];
        let chunk = count.div_ceil(threads);
        std::thread::scope(|scope| {
            for (t, slot) in out.chunks_mut(chunk).enumerate() {
                let start = t * chunk;
                let this = &*self;
                scope.spawn(move || {
                    for (off, s) in slot.iter_mut().enumerate() {
                        *s = Some(this.sample_one(seed, (start + off) as u64));
                    }
                });
            }
        });
        out.into_iter()
            .map(|s| s.expect("every slot filled by its worker"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_seed_spreads_indices() {
        let s: Vec<u64> = (0..100).map(|i| mix_seed(0, i)).collect();
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), s.len());
    }

    #[test]
    fn mix_seed_depends_on_both_arguments() {
        assert_ne!(mix_seed(1, 5), mix_seed(2, 5));
        assert_ne!(mix_seed(1, 5), mix_seed(1, 6));
    }

    #[test]
    fn generate_is_reproducible_and_matches_sequential() {
        let mc = MonteCarlo::new(VariationConfig::default());
        // Over the 32-die parallel threshold to exercise the threaded path.
        let parallel = mc.generate(40, 7);
        let sequential: Vec<_> = (0..40).map(|i| mc.sample_one(7, i)).collect();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn different_seeds_give_different_populations() {
        let mc = MonteCarlo::new(VariationConfig::default());
        assert_ne!(mc.generate(4, 1), mc.generate(4, 2));
    }

    #[test]
    fn generate_zero_returns_empty() {
        let mc = MonteCarlo::new(VariationConfig::default());
        assert!(mc.generate(0, 1).is_empty());
    }

    #[test]
    fn chips_within_population_differ() {
        let mc = MonteCarlo::new(VariationConfig::default());
        let dies = mc.generate(8, 3);
        for i in 0..dies.len() {
            for j in (i + 1)..dies.len() {
                assert_ne!(dies[i], dies[j], "chips {i} and {j} identical");
            }
        }
    }
}
