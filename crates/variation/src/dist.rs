//! Random sampling primitives.
//!
//! The paper samples every variation source inside the ±3σ limits given by
//! Nassif, so the workhorse here is a [`TruncatedNormal`]: a Gaussian
//! re-sampled until it lands within its truncation window. Box–Muller is
//! implemented directly to avoid pulling in a distributions crate.

use rand::Rng;

/// Draws one standard-normal variate using the Box–Muller transform.
///
/// # Examples
///
/// ```
/// use rand::{rngs::SmallRng, SeedableRng};
/// use yac_variation::dist::standard_normal;
///
/// let mut rng = SmallRng::seed_from_u64(7);
/// let z = standard_normal(&mut rng);
/// assert!(z.is_finite());
/// ```
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Box–Muller with a guard against log(0); the second variate of each
    // pair is discarded for simplicity — sampling here is nowhere near the
    // simulation bottleneck.
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

/// Draws from a Gumbel (extreme-value type I) distribution with location 0
/// and the given scale: `-scale · ln(-ln(U))`.
///
/// Used for the per-region worst-cell threshold excursion — the maximum of
/// very many per-cell random-dopant fluctuations follows extreme-value
/// statistics.
///
/// # Examples
///
/// ```
/// use rand::{rngs::SmallRng, SeedableRng};
/// use yac_variation::dist::gumbel;
///
/// let mut rng = SmallRng::seed_from_u64(3);
/// let x = gumbel(&mut rng, 8.0);
/// assert!(x.is_finite());
/// ```
pub fn gumbel<R: Rng + ?Sized>(rng: &mut R, scale: f64) -> f64 {
    if scale == 0.0 {
        return 0.0;
    }
    loop {
        let u: f64 = rng.gen::<f64>();
        if u <= f64::MIN_POSITIVE || u >= 1.0 {
            continue;
        }
        let x = -scale * (-u.ln()).ln();
        if x.is_finite() {
            return x;
        }
    }
}

/// A normal distribution truncated to `[mean - limit, mean + limit]`.
///
/// Sampling uses simple rejection, which is efficient for the ±3σ windows
/// used throughout this crate (acceptance probability ≈ 99.7 %).
///
/// # Examples
///
/// ```
/// use rand::{rngs::SmallRng, SeedableRng};
/// use yac_variation::dist::TruncatedNormal;
///
/// let dist = TruncatedNormal::new(10.0, 2.0, 6.0);
/// let mut rng = SmallRng::seed_from_u64(1);
/// let x = dist.sample(&mut rng);
/// assert!((4.0..=16.0).contains(&x));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedNormal {
    mean: f64,
    sigma: f64,
    limit: f64,
}

impl TruncatedNormal {
    /// Creates a truncated normal centred at `mean` with standard deviation
    /// `sigma`, truncated at `mean ± limit`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` or `limit` is negative, or any argument is not
    /// finite.
    #[must_use]
    pub fn new(mean: f64, sigma: f64, limit: f64) -> Self {
        assert!(mean.is_finite(), "mean must be finite");
        assert!(sigma.is_finite() && sigma >= 0.0, "sigma must be >= 0");
        assert!(limit.is_finite() && limit >= 0.0, "limit must be >= 0");
        TruncatedNormal { mean, sigma, limit }
    }

    /// A distribution whose truncation window is `mean ± 3σ`, the shape used
    /// by Table 1 of the paper.
    #[must_use]
    pub fn three_sigma(mean: f64, sigma: f64) -> Self {
        Self::new(mean, sigma, 3.0 * sigma)
    }

    /// The centre of the distribution.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The (pre-truncation) standard deviation.
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Half-width of the truncation window.
    #[must_use]
    pub fn limit(&self) -> f64 {
        self.limit
    }

    /// Draws one sample.
    ///
    /// Degenerate distributions (`sigma == 0` or `limit == 0`) return the
    /// mean exactly.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.sigma == 0.0 || self.limit == 0.0 {
            return self.mean;
        }
        // Rejection sampling: with limits at >= ~1 sigma this terminates
        // almost immediately; below that we fall back to clamping after a
        // bounded number of tries to keep sampling O(1) worst-case.
        const MAX_TRIES: u32 = 64;
        for _ in 0..MAX_TRIES {
            let x = self.mean + self.sigma * standard_normal(rng);
            if (x - self.mean).abs() <= self.limit {
                return x;
            }
        }
        let x = self.mean + self.sigma * standard_normal(rng);
        x.clamp(self.mean - self.limit, self.mean + self.limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_has_roughly_zero_mean_unit_variance() {
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn samples_respect_truncation_window() {
        let dist = TruncatedNormal::three_sigma(100.0, 5.0);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = dist.sample(&mut rng);
            assert!((85.0..=115.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn degenerate_sigma_returns_mean() {
        let dist = TruncatedNormal::new(3.5, 0.0, 1.0);
        let mut rng = SmallRng::seed_from_u64(7);
        assert_eq!(dist.sample(&mut rng), 3.5);
    }

    #[test]
    fn degenerate_limit_returns_mean() {
        let dist = TruncatedNormal::new(3.5, 1.0, 0.0);
        let mut rng = SmallRng::seed_from_u64(7);
        assert_eq!(dist.sample(&mut rng), 3.5);
    }

    #[test]
    fn tight_window_still_terminates() {
        // limit of 0.01 sigma: rejection would essentially always fail, the
        // clamping fallback must kick in.
        let dist = TruncatedNormal::new(0.0, 1.0, 0.01);
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            let x = dist.sample(&mut rng);
            assert!(x.abs() <= 0.01 + 1e-12);
        }
    }

    #[test]
    fn sample_mean_tracks_distribution_mean() {
        let dist = TruncatedNormal::three_sigma(-4.0, 2.0);
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 20_000;
        let mean = (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean + 4.0).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn negative_sigma_panics() {
        let _ = TruncatedNormal::new(0.0, -1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "limit")]
    fn negative_limit_panics() {
        let _ = TruncatedNormal::new(0.0, 1.0, -1.0);
    }

    #[test]
    fn gumbel_is_right_skewed_with_expected_mean() {
        let mut rng = SmallRng::seed_from_u64(8);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gumbel(&mut rng, 10.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        // Gumbel(0, beta) has mean gamma*beta ~ 5.77.
        assert!((mean - 5.77).abs() < 0.5, "mean = {mean}");
        let above = samples.iter().filter(|&&x| x > mean).count();
        assert!(above < n / 2, "right-skew: fewer samples above the mean");
    }

    #[test]
    fn gumbel_zero_scale_is_degenerate() {
        let mut rng = SmallRng::seed_from_u64(8);
        assert_eq!(gumbel(&mut rng, 0.0), 0.0);
    }

    #[test]
    fn accessors_expose_construction_values() {
        let d = TruncatedNormal::new(1.0, 2.0, 5.0);
        assert_eq!(d.mean(), 1.0);
        assert_eq!(d.sigma(), 2.0);
        assert_eq!(d.limit(), 5.0);
    }
}
