//! Small statistics toolkit used by the yield analysis and the experiment
//! harness: summaries, percentiles, Pearson correlation and histograms.

use std::fmt;

/// Summary statistics of a data set.
///
/// # Examples
///
/// ```
/// use yac_variation::stats::Summary;
///
/// let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation (divides by `n`).
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics.
    ///
    /// Returns `None` for an empty slice or if any value is not finite.
    #[must_use]
    pub fn from_slice(data: &[f64]) -> Option<Summary> {
        if data.is_empty() || data.iter().any(|x| !x.is_finite()) {
            return None;
        }
        let n = data.len();
        let mean = data.iter().sum::<f64>() / n as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in data {
            min = min.min(x);
            max = max.max(x);
        }
        Some(Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        })
    }

    /// Coefficient of variation `σ / μ` (0 when the mean is 0).
    #[must_use]
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} std={:.4} min={:.4} max={:.4}",
            self.n, self.mean, self.std_dev, self.min, self.max
        )
    }
}

/// The `q`-th percentile (0 ≤ q ≤ 100) using linear interpolation between
/// order statistics.
///
/// Returns `None` on an empty slice, out-of-range `q`, or NaN in the
/// data (a NaN has no order statistic — better refused than a panic
/// from inside the sort).
///
/// # Examples
///
/// ```
/// use yac_variation::stats::percentile;
///
/// let p = percentile(&[4.0, 1.0, 3.0, 2.0], 50.0).unwrap();
/// assert_eq!(p, 2.5);
/// ```
#[must_use]
pub fn percentile(data: &[f64], q: f64) -> Option<f64> {
    if data.is_empty() || !(0.0..=100.0).contains(&q) || data.iter().any(|v| v.is_nan()) {
        return None;
    }
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN was rejected above"));
    let pos = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Pearson correlation coefficient between two equally long series.
///
/// Returns `None` if the series are empty, differ in length, or either has
/// zero variance.
///
/// # Examples
///
/// ```
/// use yac_variation::stats::pearson;
///
/// let r = pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]).unwrap();
/// assert!((r - 1.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.len() != ys.len() {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx).powi(2);
        syy += (y - my).powi(2);
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// A fixed-width histogram over a closed range.
///
/// # Examples
///
/// ```
/// use yac_variation::stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
/// h.add(1.0);
/// h.add(9.5);
/// h.add(100.0); // out of range, counted separately
/// assert_eq!(h.counts()[0], 1);
/// assert_eq!(h.counts()[4], 1);
/// assert_eq!(h.out_of_range(), 1);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    out_of_range: u64,
}

impl Histogram {
    /// Creates a histogram of `bins` equal-width bins over `[lo, hi]`.
    ///
    /// Returns `None` if `bins == 0`, bounds are not finite, or `lo >= hi`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Option<Histogram> {
        if bins == 0 || !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return None;
        }
        Some(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            out_of_range: 0,
        })
    }

    /// Adds a sample; values outside `[lo, hi]` increment the out-of-range
    /// counter instead of a bin.
    pub fn add(&mut self, x: f64) {
        if !x.is_finite() || x < self.lo || x > self.hi {
            self.out_of_range += 1;
            return;
        }
        let bins = self.counts.len();
        let idx = (((x - self.lo) / (self.hi - self.lo)) * bins as f64) as usize;
        self.counts[idx.min(bins - 1)] += 1;
    }

    /// Per-bin counts.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Samples that fell outside the range.
    #[must_use]
    pub fn out_of_range(&self) -> u64 {
        self.out_of_range
    }

    /// Total samples added, including out-of-range ones.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.out_of_range
    }

    /// `(bin_centre, count)` pairs, for plotting/printing.
    pub fn bars(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let lo = self.lo;
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &c)| (lo + (i as f64 + 0.5) * width, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_is_none() {
        assert!(Summary::from_slice(&[]).is_none());
    }

    #[test]
    fn summary_rejects_non_finite() {
        assert!(Summary::from_slice(&[1.0, f64::NAN]).is_none());
        assert!(Summary::from_slice(&[1.0, f64::INFINITY]).is_none());
    }

    #[test]
    fn summary_basic_values() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std_dev, 2.0);
        assert_eq!(s.n, 8);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.cv() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn percentile_endpoints() {
        let data = [3.0, 1.0, 2.0];
        assert_eq!(percentile(&data, 0.0), Some(1.0));
        assert_eq!(percentile(&data, 100.0), Some(3.0));
        assert_eq!(percentile(&data, 50.0), Some(2.0));
        assert!(percentile(&data, 101.0).is_none());
        assert!(percentile(&[], 50.0).is_none());
    }

    #[test]
    fn pearson_detects_anticorrelation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [8.0, 6.0, 4.0, 2.0];
        let r = pearson(&x, &y).unwrap();
        assert!((r + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_cases() {
        assert!(pearson(&[], &[]).is_none());
        assert!(pearson(&[1.0], &[1.0, 2.0]).is_none());
        assert!(pearson(&[1.0, 1.0], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn histogram_bins_cover_range() {
        let mut h = Histogram::new(0.0, 1.0, 10).unwrap();
        for i in 0..100 {
            h.add(i as f64 / 100.0);
        }
        assert_eq!(h.total(), 100);
        assert_eq!(h.out_of_range(), 0);
        assert!(h.counts().iter().all(|&c| c == 10));
    }

    #[test]
    fn histogram_upper_edge_lands_in_last_bin() {
        let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
        h.add(1.0);
        assert_eq!(h.counts()[3], 1);
    }

    #[test]
    fn histogram_invalid_construction() {
        assert!(Histogram::new(0.0, 1.0, 0).is_none());
        assert!(Histogram::new(1.0, 0.0, 4).is_none());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_none());
    }

    #[test]
    fn histogram_bars_iterate_centres() {
        let h = Histogram::new(0.0, 4.0, 4).unwrap();
        let centres: Vec<f64> = h.bars().map(|(c, _)| c).collect();
        assert_eq!(centres, vec![0.5, 1.5, 2.5, 3.5]);
    }

    #[test]
    fn summary_display_nonempty() {
        let s = Summary::from_slice(&[1.0]).unwrap();
        assert!(!s.to_string().is_empty());
    }
}
