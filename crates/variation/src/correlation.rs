//! The paper's spatial-correlation model (§3).
//!
//! Correlation is expressed through a *correlation factor* between 0 and 1.
//! Contrary to a correlation coefficient, a **smaller** factor means
//! **tighter** correlation: once a parent entity's parameters are fixed,
//! a child entity re-samples each parameter with the parent value as the
//! new mean and the Table 1 variation range scaled by the factor.
//!
//! The paper's factors, derived from Friedberg et al.'s spatial-correlation
//! measurements, assume the four ways are laid out on a 2×2 mesh:
//!
//! | relation                    | factor  |
//! |-----------------------------|---------|
//! | bit within a row            | 0.01    |
//! | row within a way            | 0.05    |
//! | way on the same vertical    | 0.45    |
//! | way on the same horizontal  | 0.375   |
//! | way on the diagonal         | 0.7125  |

use crate::dist::TruncatedNormal;
use crate::params::{Parameter, ParameterSet};
use rand::Rng;
use std::fmt;

/// A correlation factor in `[0, 1]`; **smaller means more correlated**.
///
/// # Examples
///
/// ```
/// use yac_variation::CorrelationFactor;
///
/// let f = CorrelationFactor::new(0.45).unwrap();
/// assert_eq!(f.value(), 0.45);
/// assert!(CorrelationFactor::new(1.5).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct CorrelationFactor(f64);

/// Error returned when constructing a [`CorrelationFactor`] outside `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidFactorError;

impl fmt::Display for InvalidFactorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("correlation factor must lie in [0, 1] and be finite")
    }
}

impl std::error::Error for InvalidFactorError {}

impl CorrelationFactor {
    /// Correlation factor between bits of a cache block (paper §3).
    pub const BIT: CorrelationFactor = CorrelationFactor(0.01);
    /// Correlation factor between rows of a way (paper §3).
    pub const ROW: CorrelationFactor = CorrelationFactor(0.05);
    /// Ways on the same vertical line of the 2×2 mesh.
    pub const WAY_VERTICAL: CorrelationFactor = CorrelationFactor(0.45);
    /// Ways on the same horizontal line of the 2×2 mesh.
    pub const WAY_HORIZONTAL: CorrelationFactor = CorrelationFactor(0.375);
    /// Ways on the same diagonal of the 2×2 mesh.
    pub const WAY_DIAGONAL: CorrelationFactor = CorrelationFactor(0.7125);
    /// Fully independent re-sampling (the full Table 1 range).
    pub const INDEPENDENT: CorrelationFactor = CorrelationFactor(1.0);
    /// Perfect correlation (child copies the parent exactly).
    pub const IDENTICAL: CorrelationFactor = CorrelationFactor(0.0);

    /// Validates and wraps a raw factor.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidFactorError`] if `value` is not finite or lies
    /// outside `[0, 1]`.
    pub fn new(value: f64) -> Result<Self, InvalidFactorError> {
        if value.is_finite() && (0.0..=1.0).contains(&value) {
            Ok(CorrelationFactor(value))
        } else {
            Err(InvalidFactorError)
        }
    }

    /// The raw factor.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Re-samples a full parameter set around `parent` with every range
    /// scaled by this factor, exactly as described in §3 of the paper.
    #[must_use]
    pub fn refine<R: Rng + ?Sized>(self, parent: &ParameterSet, rng: &mut R) -> ParameterSet {
        let mut child = *parent;
        for p in Parameter::ALL {
            let sigma = p.sigma() * self.0;
            let dist = TruncatedNormal::three_sigma(parent.get(p), sigma);
            child.set(p, dist.sample(rng).max(p.nominal() * 1e-3));
        }
        child
    }
}

impl fmt::Display for CorrelationFactor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Position of a way on the paper's 2×2 layout mesh.
///
/// Way 0 sits at the origin; the remaining ways are its vertical,
/// horizontal and diagonal neighbours.
///
/// # Examples
///
/// ```
/// use yac_variation::{CorrelationFactor, MeshPosition};
///
/// let a = MeshPosition::new(0, 0);
/// let b = MeshPosition::new(0, 1);
/// assert_eq!(a.factor_to(b), CorrelationFactor::WAY_VERTICAL);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MeshPosition {
    /// Column on the mesh (0 or 1 for a 2×2 layout).
    pub col: u8,
    /// Row on the mesh (0 or 1 for a 2×2 layout).
    pub row: u8,
}

impl MeshPosition {
    /// Creates a mesh position.
    #[must_use]
    pub fn new(col: u8, row: u8) -> Self {
        MeshPosition { col, row }
    }

    /// Standard placement of the four ways of the paper's cache:
    /// way 0 at (0,0), way 1 at (0,1), way 2 at (1,0), way 3 at (1,1).
    #[must_use]
    pub fn for_way(way: usize) -> Self {
        MeshPosition::new((way as u8 >> 1) & 1, way as u8 & 1)
    }

    /// Normalised die-plane coordinates of the centre of this mesh tile,
    /// assuming a 2×2 mesh covering the unit square.
    #[must_use]
    pub fn die_coordinates(self) -> (f64, f64) {
        (
            0.25 + 0.5 * f64::from(self.col),
            0.25 + 0.5 * f64::from(self.row),
        )
    }

    /// The paper's correlation factor between ways at two mesh positions.
    ///
    /// Identical positions are perfectly correlated; positions differing in
    /// only the row are vertical neighbours; only the column, horizontal
    /// neighbours; both, diagonal.
    #[must_use]
    pub fn factor_to(self, other: MeshPosition) -> CorrelationFactor {
        match (self.col == other.col, self.row == other.row) {
            (true, true) => CorrelationFactor::IDENTICAL,
            (true, false) => CorrelationFactor::WAY_VERTICAL,
            (false, true) => CorrelationFactor::WAY_HORIZONTAL,
            (false, false) => CorrelationFactor::WAY_DIAGONAL,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn paper_factors_have_expected_values() {
        assert_eq!(CorrelationFactor::BIT.value(), 0.01);
        assert_eq!(CorrelationFactor::ROW.value(), 0.05);
        assert_eq!(CorrelationFactor::WAY_VERTICAL.value(), 0.45);
        assert_eq!(CorrelationFactor::WAY_HORIZONTAL.value(), 0.375);
        assert_eq!(CorrelationFactor::WAY_DIAGONAL.value(), 0.7125);
    }

    #[test]
    fn new_rejects_out_of_range() {
        assert!(CorrelationFactor::new(-0.1).is_err());
        assert!(CorrelationFactor::new(1.1).is_err());
        assert!(CorrelationFactor::new(f64::NAN).is_err());
        assert!(CorrelationFactor::new(0.0).is_ok());
        assert!(CorrelationFactor::new(1.0).is_ok());
    }

    #[test]
    fn identical_factor_copies_parent() {
        let parent = ParameterSet::nominal().with_offset_sigmas(Parameter::GateLength, 1.7);
        let mut rng = SmallRng::seed_from_u64(3);
        let child = CorrelationFactor::IDENTICAL.refine(&parent, &mut rng);
        assert_eq!(child, parent);
    }

    #[test]
    fn refine_keeps_child_within_scaled_window() {
        let parent = ParameterSet::nominal();
        let f = CorrelationFactor::ROW;
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..2_000 {
            let child = f.refine(&parent, &mut rng);
            for p in Parameter::ALL {
                let window = 3.0 * p.sigma() * f.value();
                assert!(
                    (child.get(p) - parent.get(p)).abs() <= window + 1e-9,
                    "{p}: child strayed outside the scaled window"
                );
            }
        }
    }

    #[test]
    fn tighter_factor_means_smaller_spread() {
        let parent = ParameterSet::nominal();
        let mut rng = SmallRng::seed_from_u64(6);
        let spread = |f: CorrelationFactor, rng: &mut SmallRng| {
            let n = 4_000;
            let mut sum = 0.0;
            for _ in 0..n {
                let child = f.refine(&parent, rng);
                sum += child.sigma_distance(&parent);
            }
            sum / n as f64
        };
        let tight = spread(CorrelationFactor::ROW, &mut rng);
        let loose = spread(CorrelationFactor::WAY_DIAGONAL, &mut rng);
        assert!(
            tight < loose / 3.0,
            "row refinement ({tight}) should be much tighter than diagonal ({loose})"
        );
    }

    #[test]
    fn mesh_positions_for_four_ways_are_distinct() {
        let positions: Vec<_> = (0..4).map(MeshPosition::for_way).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(positions[i], positions[j]);
            }
        }
    }

    #[test]
    fn mesh_factors_match_paper_relative_to_way0() {
        let w0 = MeshPosition::for_way(0);
        assert_eq!(
            w0.factor_to(MeshPosition::for_way(1)),
            CorrelationFactor::WAY_VERTICAL
        );
        assert_eq!(
            w0.factor_to(MeshPosition::for_way(2)),
            CorrelationFactor::WAY_HORIZONTAL
        );
        assert_eq!(
            w0.factor_to(MeshPosition::for_way(3)),
            CorrelationFactor::WAY_DIAGONAL
        );
    }

    #[test]
    fn factor_to_is_symmetric() {
        for i in 0..4 {
            for j in 0..4 {
                let a = MeshPosition::for_way(i);
                let b = MeshPosition::for_way(j);
                assert_eq!(a.factor_to(b), b.factor_to(a));
            }
        }
    }

    #[test]
    fn die_coordinates_lie_in_unit_square() {
        for w in 0..4 {
            let (x, y) = MeshPosition::for_way(w).die_coordinates();
            assert!((0.0..=1.0).contains(&x));
            assert!((0.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn error_display_is_nonempty() {
        assert!(!InvalidFactorError.to_string().is_empty());
    }
}
