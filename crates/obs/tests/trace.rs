//! Integration tests for the trace journal and its exporters: ring
//! overwrite semantics under concurrent writers, the zero-cost-disabled
//! contract through the free-function API, and Perfetto export validity
//! checked by actually parsing the JSON (with a small local parser —
//! the container carries no JSON dependency).

use std::sync::atomic::{AtomicBool, Ordering};
use yac_obs::trace::{Journal, TraceCtx, TraceEventKind};
use yac_obs::{ndjson, perfetto, Phase};

// ---------------------------------------------------------------------
// A minimal JSON validity parser: accepts exactly RFC 8259 structure
// (objects, arrays, strings, numbers, true/false/null), returns the
// remaining input on success. Enough to prove the exporter emits JSON a
// real tool will load.

fn skip_ws(s: &str) -> &str {
    s.trim_start_matches([' ', '\t', '\n', '\r'])
}

fn parse_value(s: &str) -> Result<&str, String> {
    let s = skip_ws(s);
    match s.chars().next() {
        Some('{') => parse_object(s),
        Some('[') => parse_array(s),
        Some('"') => parse_string(s),
        Some('t') => s.strip_prefix("true").ok_or("bad literal".into()),
        Some('f') => s.strip_prefix("false").ok_or("bad literal".into()),
        Some('n') => s.strip_prefix("null").ok_or("bad literal".into()),
        Some(c) if c == '-' || c.is_ascii_digit() => parse_number(s),
        other => Err(format!("unexpected {other:?}")),
    }
}

fn parse_object(s: &str) -> Result<&str, String> {
    let mut s = skip_ws(s.strip_prefix('{').ok_or("expected {")?);
    if let Some(rest) = s.strip_prefix('}') {
        return Ok(rest);
    }
    loop {
        s = parse_string(skip_ws(s))?;
        s = skip_ws(s).strip_prefix(':').ok_or("expected :")?;
        s = parse_value(s)?;
        s = skip_ws(s);
        if let Some(rest) = s.strip_prefix(',') {
            s = rest;
        } else {
            return s.strip_prefix('}').ok_or_else(|| "expected }".into());
        }
    }
}

fn parse_array(s: &str) -> Result<&str, String> {
    let mut s = skip_ws(s.strip_prefix('[').ok_or("expected [")?);
    if let Some(rest) = s.strip_prefix(']') {
        return Ok(rest);
    }
    loop {
        s = parse_value(s)?;
        s = skip_ws(s);
        if let Some(rest) = s.strip_prefix(',') {
            s = rest;
        } else {
            return s.strip_prefix(']').ok_or_else(|| "expected ]".into());
        }
    }
}

fn parse_string(s: &str) -> Result<&str, String> {
    let mut chars = s.strip_prefix('"').ok_or("expected \"")?.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok(&s[i + 2..]),
            '\\' => {
                let (_, esc) = chars.next().ok_or("dangling escape")?;
                if esc == 'u' {
                    for _ in 0..4 {
                        let (_, h) = chars.next().ok_or("short \\u escape")?;
                        if !h.is_ascii_hexdigit() {
                            return Err("bad \\u escape".into());
                        }
                    }
                } else if !matches!(esc, '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') {
                    return Err(format!("bad escape \\{esc}"));
                }
            }
            c if (c as u32) < 0x20 => return Err("raw control char in string".into()),
            _ => {}
        }
    }
    Err("unterminated string".into())
}

fn parse_number(s: &str) -> Result<&str, String> {
    let end = s
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')))
        .unwrap_or(s.len());
    s[..end]
        .parse::<f64>()
        .map_err(|e| format!("bad number {:?}: {e}", &s[..end]))?;
    Ok(&s[end..])
}

fn assert_valid_json(text: &str) {
    let rest = parse_value(text).unwrap_or_else(|e| panic!("invalid JSON: {e}\n{text}"));
    assert!(skip_ws(rest).is_empty(), "trailing garbage: {rest:?}");
}

// ---------------------------------------------------------------------

#[test]
fn perfetto_export_is_parseable_json_with_expected_structure() {
    let j = Journal::new();
    j.enable();
    std::thread::scope(|s| {
        for w in 0..3u32 {
            let j = &j;
            s.spawn(move || {
                j.label_thread(&format!("worker-{w}"));
                for shard in 0..4 {
                    let ctx = TraceCtx::shard(w, shard, 0);
                    let start = j.now_ns();
                    j.record_instant(TraceEventKind::ShardDispatched, ctx);
                    j.record_span(TraceEventKind::PhaseSpan(Phase::ShardExec), ctx, start);
                    j.record_instant(TraceEventKind::ShardCompleted, ctx);
                }
            });
        }
    });
    let snap = j.snapshot();
    let json = perfetto::to_chrome_json(&snap);
    assert_valid_json(&json);
    // One thread_name metadata record per recorded thread.
    assert_eq!(json.matches("\"thread_name\"").count(), 3);
    for w in 0..3 {
        assert!(json.contains(&format!("\"worker-{w}\"")));
    }
    // Spans render as complete events, instants as thread-scoped marks.
    assert_eq!(json.matches("\"ph\":\"X\"").count(), 12);
    assert_eq!(json.matches("\"ph\":\"i\"").count(), 24);
    // NDJSON sees the same event set.
    let parsed = ndjson::parse_ndjson(&ndjson::to_ndjson(&snap)).expect("ndjson parses");
    assert_eq!(parsed.events.len(), 36);
    assert_eq!(parsed.count_kind(TraceEventKind::ShardCompleted), 12);
}

#[test]
fn ring_overwrite_under_concurrent_writers_keeps_only_recent_events() {
    let j = Journal::new();
    j.set_capacity(64);
    j.enable();
    const WRITERS: u64 = 4;
    const PER_WRITER: u64 = 1_000;
    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let j = &j;
            s.spawn(move || {
                for i in 0..PER_WRITER {
                    // Payload is self-checking: t_ns mirrors chip.
                    j.record_at(
                        TraceEventKind::RescueAttempt,
                        TraceCtx::chip(w << 32 | i),
                        w << 32 | i,
                        0,
                    );
                }
            });
        }
    });
    let snap = j.snapshot();
    assert_eq!(snap.threads.len(), WRITERS as usize);
    assert_eq!(snap.dropped_events, 0);
    for t in &snap.threads {
        assert_eq!(t.events.len(), 64, "ring holds exactly its capacity");
        assert_eq!(t.lost, PER_WRITER - 64, "older events were overwritten");
        // Survivors are the *most recent* 64, in order, untorn.
        let indices: Vec<u64> = t
            .events
            .iter()
            .map(|e| {
                assert_eq!(Some(e.t_ns), e.ctx.chip, "torn event");
                e.ctx.chip.unwrap() & 0xFFFF_FFFF
            })
            .collect();
        let expect: Vec<u64> = (PER_WRITER - 64..PER_WRITER).collect();
        assert_eq!(indices, expect);
    }
}

#[test]
fn snapshot_while_writers_race_is_safe_and_untorn() {
    let j = Journal::new();
    j.set_capacity(16);
    j.enable();
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        for w in 0..3u64 {
            let (j, stop) = (&j, &stop);
            s.spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    j.record_at(
                        TraceEventKind::ShardRetried,
                        TraceCtx::chip(w << 40 | i),
                        w << 40 | i,
                        0,
                    );
                    i += 1;
                }
            });
        }
        for _ in 0..200 {
            for t in j.snapshot().threads {
                for e in t.events {
                    assert_eq!(Some(e.t_ns), e.ctx.chip, "torn event surfaced");
                }
            }
        }
        stop.store(true, Ordering::Relaxed);
    });
}

#[test]
fn disabled_journal_is_inert_through_the_free_function_api() {
    // This test owns the process-global journal for this test binary
    // (no other test here touches it).
    assert!(!yac_obs::trace_enabled());
    yac_obs::trace_instant(TraceEventKind::ShardCompleted, TraceCtx::default());
    let start = yac_obs::trace_now_ns();
    yac_obs::trace_span_at(
        TraceEventKind::PhaseSpan(Phase::Sample),
        TraceCtx::default(),
        start,
    );
    assert!(yac_obs::journal().snapshot().is_empty());
    assert_eq!(yac_obs::journal().dropped_events(), 0);

    // The phase() span wrapper records registry time regardless, trace
    // events only when tracing is on.
    yac_obs::enable();
    let calls_before = yac_obs::global().phase_calls(Phase::Report);
    drop(yac_obs::phase(Phase::Report));
    assert_eq!(
        yac_obs::global().phase_calls(Phase::Report),
        calls_before + 1
    );
    assert!(yac_obs::journal().snapshot().is_empty());
    yac_obs::disable();
}
