//! Concurrency and nesting contracts of the metrics registry.

use yac_obs::{Metric, Phase, Registry};

/// Concurrent increments from N threads sum exactly — no lost updates.
#[test]
fn concurrent_increments_sum_exactly() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 100_000;
    let reg = Registry::new();
    reg.enable();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let reg = &reg;
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    reg.inc(Metric::CircuitEvals);
                    // Mix in adds on a second counter to shake out any
                    // cross-metric interference.
                    reg.add(Metric::UopsCommitted, (t as u64 + i) % 3);
                }
            });
        }
    });
    assert_eq!(
        reg.counter(Metric::CircuitEvals),
        THREADS as u64 * PER_THREAD
    );
    let expected: u64 = (0..THREADS as u64)
        .map(|t| (0..PER_THREAD).map(|i| (t + i) % 3).sum::<u64>())
        .sum();
    assert_eq!(reg.counter(Metric::UopsCommitted), expected);
}

/// Concurrent histogram recording loses no samples and keeps the sum.
#[test]
fn concurrent_histogram_recording_is_exact() {
    const THREADS: u64 = 6;
    const PER_THREAD: u64 = 50_000;
    let reg = Registry::new();
    reg.enable();
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let reg = &reg;
            scope.spawn(move || {
                for i in 1..=PER_THREAD {
                    reg.record_phase_nanos(Phase::CircuitEval, i);
                }
            });
        }
    });
    let hist = reg.phase_histogram(Phase::CircuitEval);
    assert_eq!(hist.count(), THREADS * PER_THREAD);
    assert_eq!(
        hist.total_nanos(),
        THREADS * (PER_THREAD * (PER_THREAD + 1) / 2)
    );
    assert_eq!(reg.phase_calls(Phase::CircuitEval), THREADS * PER_THREAD);
}

/// Nested phase guards attribute inclusively: the inner phase's time is
/// also counted in every enclosing phase, and drop order is handled by
/// scoping alone.
#[test]
fn phase_timers_nest_correctly() {
    let reg = Registry::new();
    reg.enable();
    {
        let _outer = reg.phase(Phase::Classify);
        std::thread::sleep(std::time::Duration::from_millis(5));
        {
            let _inner = reg.phase(Phase::Rescue);
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        // Same-phase nesting is allowed too.
        {
            let _again = reg.phase(Phase::Classify);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }
    assert_eq!(reg.phase_calls(Phase::Classify), 2);
    assert_eq!(reg.phase_calls(Phase::Rescue), 1);
    let outer = reg.phase_nanos(Phase::Classify);
    let inner = reg.phase_nanos(Phase::Rescue);
    assert!(inner >= 4_000_000, "inner slept ≥5ms, recorded {inner}ns");
    // Outer guard spans the inner one, plus the nested same-phase guard
    // adds its own lifetime again.
    assert!(
        outer > inner,
        "outer {outer}ns must include inner {inner}ns"
    );
    assert!(
        outer >= 12_000_000,
        "outer = full scope (≥12ms) + nested re-entry (≥2ms), got {outer}ns"
    );
}

/// Toggling collection mid-run keeps earlier data and ignores the gap.
#[test]
fn toggling_enabled_gates_recording() {
    let reg = Registry::new();
    reg.enable();
    reg.inc(Metric::DiesSampled);
    reg.disable();
    reg.inc(Metric::DiesSampled);
    {
        let _g = reg.phase(Phase::Sample);
    }
    reg.enable();
    reg.inc(Metric::DiesSampled);
    assert_eq!(reg.counter(Metric::DiesSampled), 2);
    assert_eq!(reg.phase_calls(Phase::Sample), 0);
}

/// A guard created while enabled records even if collection is switched
/// off before it drops (its clock was already running).
#[test]
fn in_flight_guard_survives_disable() {
    let reg = Registry::new();
    reg.enable();
    let guard = reg.phase(Phase::Report);
    reg.disable();
    drop(guard);
    assert_eq!(reg.phase_calls(Phase::Report), 1);
}

/// Snapshots are plain data and see exactly the recorded values.
#[test]
fn snapshot_reflects_state() {
    let reg = Registry::new();
    reg.enable();
    reg.add(Metric::RescueSaves, 9);
    reg.record_phase_nanos(Phase::Rescue, 77);
    let snap = reg.snapshot();
    assert_eq!(snap.counter(Metric::RescueSaves), 9);
    assert_eq!(snap.phase_nanos(Phase::Rescue), 77);
    assert_eq!(snap.phase_calls[Phase::Rescue as usize], 1);
    // Later mutation doesn't retro-edit the snapshot.
    reg.add(Metric::RescueSaves, 1);
    assert_eq!(snap.counter(Metric::RescueSaves), 9);
}
