//! Append-only NDJSON event log for [`crate::trace`] snapshots, schema
//! **`yac-trace/1`** — one JSON object per line, greppable and
//! stream-parseable without loading the whole trace.
//!
//! Line 1 is a header object; every following line is one event:
//!
//! ```json
//! {"schema":"yac-trace/1","dropped_events":0,"threads":2}
//! {"slot":3,"thread":"worker-0","t_ns":1000,"dur_ns":5000,"kind":"PhaseSpan","phase":"shard_exec","worker":0,"shard":2,"attempt":1}
//! {"slot":3,"thread":"worker-0","t_ns":9000,"dur_ns":0,"kind":"ShardRetried","worker":0,"shard":2,"attempt":1}
//! ```
//!
//! Field names are append-only: `schema`, `slot`, `thread`, `t_ns`,
//! `dur_ns` and `kind` are always present; `phase` appears on
//! `PhaseSpan` lines; `worker`/`shard`/`attempt`/`chip`/`scheme`/`study`
//! appear when the event carried that context. [`parse_ndjson`] reads the
//! format back (a deliberately narrow reader for our own stable writer —
//! the container carries no JSON dependency), which is also what the CI
//! trace-validation step and the round-trip tests use.

use crate::perfetto::json_escape;
use crate::registry::Phase;
use crate::trace::{TraceCtx, TraceEvent, TraceEventKind, TraceSnapshot};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// The NDJSON schema identifier written in the header line.
pub const NDJSON_SCHEMA: &str = "yac-trace/1";

/// Renders a snapshot as `yac-trace/1` NDJSON (header line + one line
/// per event, in slot order then recording order).
#[must_use]
pub fn to_ndjson(snapshot: &TraceSnapshot) -> String {
    let mut out = String::with_capacity(128 + snapshot.total_events() * 128);
    let _ = writeln!(
        out,
        "{{\"schema\":\"{NDJSON_SCHEMA}\",\"dropped_events\":{},\"threads\":{}}}",
        snapshot.dropped_events,
        snapshot.threads.len()
    );
    for thread in &snapshot.threads {
        for event in &thread.events {
            write_line(&mut out, thread.slot, &thread.label, event);
        }
    }
    out
}

/// Writes [`to_ndjson`] output to `path`.
///
/// # Errors
///
/// Propagates the underlying file-system error.
pub fn write_ndjson(path: &Path, snapshot: &TraceSnapshot) -> io::Result<()> {
    std::fs::write(path, to_ndjson(snapshot))
}

fn write_line(out: &mut String, slot: usize, label: &str, event: &TraceEvent) {
    let _ = write!(
        out,
        "{{\"slot\":{slot},\"thread\":{},\"t_ns\":{},\"dur_ns\":{},\"kind\":\"{}\"",
        json_escape(label),
        event.t_ns,
        event.dur_ns,
        event.kind.name()
    );
    if let TraceEventKind::PhaseSpan(phase) = event.kind {
        let _ = write!(out, ",\"phase\":\"{}\"", phase.name());
    }
    if let Some(w) = event.ctx.worker {
        let _ = write!(out, ",\"worker\":{w}");
    }
    if let Some(s) = event.ctx.shard {
        let _ = write!(out, ",\"shard\":{s}");
    }
    if let Some(a) = event.ctx.attempt {
        let _ = write!(out, ",\"attempt\":{a}");
    }
    if let Some(c) = event.ctx.chip {
        let _ = write!(out, ",\"chip\":{c}");
    }
    if let Some(s) = event.ctx.scheme {
        let _ = write!(out, ",\"scheme\":{s}");
    }
    if let Some(s) = event.ctx.study {
        let _ = write!(out, ",\"study\":{s}");
    }
    out.push_str("}\n");
}

/// One parsed event line: the journal slot, thread label and the event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NdjsonEvent {
    /// Journal slot the event was recorded on.
    pub slot: usize,
    /// The recording thread's display label.
    pub thread: String,
    /// The decoded event.
    pub event: TraceEvent,
}

/// A fully parsed `yac-trace/1` document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedTrace {
    /// Events dropped by the journal (from the header line).
    pub dropped_events: u64,
    /// Thread count declared in the header line.
    pub threads: usize,
    /// Every event line, in file order.
    pub events: Vec<NdjsonEvent>,
}

impl ParsedTrace {
    /// Number of events whose kind matches `kind`.
    #[must_use]
    pub fn count_kind(&self, kind: TraceEventKind) -> usize {
        self.events.iter().filter(|e| e.event.kind == kind).count()
    }
}

/// Parses `yac-trace/1` NDJSON text back into events.
///
/// # Errors
///
/// Returns a message naming the first malformed line: missing/foreign
/// schema header, an unknown `kind`, a `PhaseSpan` without a valid
/// `phase`, or an unparsable required field.
pub fn parse_ndjson(text: &str) -> Result<ParsedTrace, String> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (_, header) = lines.next().ok_or("empty trace: missing header line")?;
    let schema = str_field(header, "schema").ok_or("header line has no \"schema\" field")?;
    if schema != NDJSON_SCHEMA {
        return Err(format!(
            "unsupported schema {schema:?} (want {NDJSON_SCHEMA:?})"
        ));
    }
    let dropped_events =
        u64_field(header, "dropped_events").ok_or("header line has no \"dropped_events\"")?;
    let threads = u64_field(header, "threads").ok_or("header line has no \"threads\"")? as usize;
    let mut events = Vec::new();
    for (idx, line) in lines {
        let bad = |what: &str| format!("line {}: {what}: {line}", idx + 1);
        let slot = u64_field(line, "slot").ok_or_else(|| bad("missing \"slot\""))? as usize;
        let thread = str_field(line, "thread").ok_or_else(|| bad("missing \"thread\""))?;
        let t_ns = u64_field(line, "t_ns").ok_or_else(|| bad("missing \"t_ns\""))?;
        let dur_ns = u64_field(line, "dur_ns").ok_or_else(|| bad("missing \"dur_ns\""))?;
        let kind_name = str_field(line, "kind").ok_or_else(|| bad("missing \"kind\""))?;
        let phase = match str_field(line, "phase") {
            Some(name) => Some(
                Phase::ALL
                    .into_iter()
                    .find(|p| p.name() == name)
                    .ok_or_else(|| bad("unknown phase"))?,
            ),
            None => None,
        };
        let kind =
            TraceEventKind::from_name(&kind_name, phase).ok_or_else(|| bad("unknown kind"))?;
        let narrow32 = |v: u64| u32::try_from(v).map_err(|_| bad("context field exceeds u32"));
        let narrow16 = |v: u64| u16::try_from(v).map_err(|_| bad("scheme field exceeds u16"));
        events.push(NdjsonEvent {
            slot,
            thread,
            event: TraceEvent {
                t_ns,
                dur_ns,
                kind,
                ctx: TraceCtx {
                    worker: u64_field(line, "worker").map(narrow32).transpose()?,
                    shard: u64_field(line, "shard").map(narrow32).transpose()?,
                    attempt: u64_field(line, "attempt").map(narrow32).transpose()?,
                    chip: u64_field(line, "chip"),
                    scheme: u64_field(line, "scheme").map(narrow16).transpose()?,
                    study: u64_field(line, "study").map(narrow32).transpose()?,
                },
            },
        });
    }
    Ok(ParsedTrace {
        dropped_events,
        threads,
        events,
    })
}

/// Extracts a `"key":"string"` field from one flat JSON line, undoing
/// the writer's escapes.
fn str_field(line: &str, key: &str) -> Option<String> {
    let rest = field_value(line, key)?;
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    out.push(char::from_u32(u32::from_str_radix(&hex, 16).ok()?)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
    None
}

/// Extracts a `"key":123` numeric field from one flat JSON line.
fn u64_field(line: &str, key: &str) -> Option<u64> {
    let rest = field_value(line, key)?;
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The text immediately after `"key":` in a flat single-line object.
fn field_value<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    Some(line[line.find(&needle)? + needle.len()..].trim_start())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Journal;

    #[test]
    fn round_trips_every_event_kind() {
        let j = Journal::new();
        j.enable();
        j.label_thread("kinds");
        let ctx = TraceCtx {
            worker: Some(1),
            shard: Some(9),
            attempt: Some(2),
            chip: Some(4242),
            scheme: Some(3),
            study: Some(7),
        };
        for (i, kind) in TraceEventKind::ALL.into_iter().enumerate() {
            j.record_at(kind, ctx, i as u64 * 10, i as u64);
        }
        let snap = j.snapshot();
        let parsed = parse_ndjson(&to_ndjson(&snap)).expect("round trip parses");
        assert_eq!(parsed.threads, 1);
        assert_eq!(parsed.dropped_events, 0);
        assert_eq!(parsed.events.len(), TraceEventKind::ALL.len());
        for (parsed, (i, kind)) in parsed
            .events
            .iter()
            .zip(TraceEventKind::ALL.into_iter().enumerate())
        {
            assert_eq!(parsed.thread, "kinds");
            assert_eq!(parsed.event.kind, kind, "kind {}", kind.name());
            assert_eq!(parsed.event.t_ns, i as u64 * 10);
            assert_eq!(parsed.event.dur_ns, i as u64);
            assert_eq!(parsed.event.ctx, ctx);
        }
        assert_eq!(parsed.count_kind(TraceEventKind::ShardDegraded), 1);
    }

    #[test]
    fn absent_ctx_fields_are_omitted_and_parse_back_as_none() {
        let j = Journal::new();
        j.enable();
        j.record_at(TraceEventKind::CheckpointWritten, TraceCtx::default(), 5, 0);
        let text = to_ndjson(&j.snapshot());
        let event_line = text.lines().nth(1).unwrap();
        for absent in ["worker", "shard", "attempt", "chip", "scheme", "study"] {
            assert!(!event_line.contains(absent), "{absent} in {event_line}");
        }
        let parsed = parse_ndjson(&text).unwrap();
        assert_eq!(parsed.events[0].event.ctx, TraceCtx::default());
    }

    #[test]
    fn rejects_foreign_schema_and_malformed_lines() {
        assert!(parse_ndjson("").is_err());
        assert!(
            parse_ndjson("{\"schema\":\"yac-trace/999\",\"dropped_events\":0,\"threads\":0}")
                .unwrap_err()
                .contains("unsupported schema")
        );
        let bad_kind = "{\"schema\":\"yac-trace/1\",\"dropped_events\":0,\"threads\":1}\n\
                        {\"slot\":0,\"thread\":\"t\",\"t_ns\":1,\"dur_ns\":0,\"kind\":\"Mystery\"}\n";
        assert!(parse_ndjson(bad_kind).unwrap_err().contains("unknown kind"));
        let no_phase = "{\"schema\":\"yac-trace/1\",\"dropped_events\":0,\"threads\":1}\n\
                        {\"slot\":0,\"thread\":\"t\",\"t_ns\":1,\"dur_ns\":0,\"kind\":\"PhaseSpan\"}\n";
        assert!(parse_ndjson(no_phase).is_err(), "PhaseSpan needs a phase");
    }

    #[test]
    fn thread_labels_with_escapes_round_trip() {
        let j = Journal::new();
        j.enable();
        j.label_thread("bench \"gcc\"\t#1");
        j.record_at(TraceEventKind::ShardCompleted, TraceCtx::default(), 1, 0);
        let parsed = parse_ndjson(&to_ndjson(&j.snapshot())).unwrap();
        assert_eq!(parsed.events[0].thread, "bench \"gcc\"\t#1");
    }
}
