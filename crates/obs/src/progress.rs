//! Live progress reporting: a sampler thread that diffs [`Registry`]
//! snapshots and prints periodic one-line status updates to stderr.
//!
//! The reporter is **observation only** — it never touches simulation
//! state, only reads the same atomics the metrics hooks write — so
//! enabling it cannot change a study's results. Each tick it reports
//! chips done/total, recent throughput, an ETA, per-worker utilization
//! (ShardExec busy time over `workers × interval`), and the retry /
//! timeout / degraded counts that tell an operator whether a long run is
//! healthy or quietly thrashing.
//!
//! # Examples
//!
//! ```
//! use yac_obs::progress::{ProgressConfig, ProgressReporter};
//!
//! yac_obs::enable();
//! let reporter = ProgressReporter::start(
//!     yac_obs::global(),
//!     ProgressConfig { total_chips: 200, workers: 4, ..ProgressConfig::default() },
//! );
//! // ... run the study ...
//! reporter.stop(); // prints a final line and joins the sampler thread
//! ```

use crate::registry::{Metric, Phase, Registry, Snapshot};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What the reporter reports against.
#[derive(Debug, Clone)]
pub struct ProgressConfig {
    /// Total chips the run will sample (denominator for % and ETA).
    pub total_chips: u64,
    /// Total studies a sweep will run; 0 hides the studies segment.
    pub total_studies: u64,
    /// Worker-thread count (denominator for utilization).
    pub workers: usize,
    /// Time between progress lines.
    pub interval: Duration,
    /// Line prefix (defaults to `yac`).
    pub label: String,
}

impl Default for ProgressConfig {
    fn default() -> Self {
        ProgressConfig {
            total_chips: 0,
            total_studies: 0,
            workers: 1,
            interval: Duration::from_secs(2),
            label: "yac".to_owned(),
        }
    }
}

/// Renders one progress line from two registry snapshots taken
/// `interval` apart, `elapsed` into the run. Pure — this is what the
/// sampler thread prints and what the unit tests exercise.
///
/// Chips done is read as completed `Phase::Sample` guards (every sampled
/// chip passes through exactly one), clamped to the configured total.
#[must_use]
pub fn render_progress(
    prev: &Snapshot,
    cur: &Snapshot,
    elapsed: Duration,
    interval: Duration,
    config: &ProgressConfig,
) -> String {
    let sample = Phase::Sample as usize;
    let done = if config.total_chips > 0 {
        cur.phase_calls[sample].min(config.total_chips)
    } else {
        cur.phase_calls[sample]
    };
    let tick_s = interval.as_secs_f64().max(1e-9);
    let recent_rate =
        cur.phase_calls[sample].saturating_sub(prev.phase_calls[sample]) as f64 / tick_s;
    let overall_rate = done as f64 / elapsed.as_secs_f64().max(1e-9);

    let mut line = String::with_capacity(128);
    let _ = write!(line, "[{}] ", config.label);
    if config.total_studies > 0 {
        let studies_done = cur.counter(Metric::StudiesCompleted)
            + cur.counter(Metric::StudiesDegraded)
            + cur.counter(Metric::StudiesFailed);
        let _ = write!(
            line,
            "study {}/{} | ",
            studies_done.min(config.total_studies),
            config.total_studies
        );
    }
    if config.total_chips > 0 {
        let pct = 100.0 * done as f64 / config.total_chips as f64;
        let _ = write!(line, "{done}/{} chips ({pct:.1}%)", config.total_chips);
    } else {
        let _ = write!(line, "{done} chips");
    }
    let _ = write!(line, " | {recent_rate:.1} chips/s");
    if config.total_chips > 0 {
        let remaining = config.total_chips - done;
        // Prefer the recent rate; fall back to the whole-run average when
        // the last tick was idle (e.g. the run is in a non-sampling phase).
        let rate = if recent_rate > 0.0 {
            recent_rate
        } else {
            overall_rate
        };
        if remaining == 0 {
            line.push_str(" | ETA 0s");
        } else if rate > 0.0 {
            let _ = write!(line, " | ETA {}", human_duration(remaining as f64 / rate));
        } else {
            line.push_str(" | ETA --");
        }
    }
    let exec = Phase::ShardExec as usize;
    let busy_ns = cur.phase_nanos[exec].saturating_sub(prev.phase_nanos[exec]) as f64;
    let util = 100.0 * busy_ns / (config.workers.max(1) as f64 * tick_s * 1e9);
    let _ = write!(line, " | util {:.0}%", util.min(100.0));
    let delta = |m: Metric| cur.counter(m);
    let (retries, timeouts, degraded) = (
        delta(Metric::ShardRetries),
        delta(Metric::ShardTimeouts),
        delta(Metric::DegradedShards),
    );
    if retries > 0 || timeouts > 0 || degraded > 0 {
        let _ = write!(
            line,
            " | retries {retries} (timeouts {timeouts}) | degraded {degraded}"
        );
    }
    line
}

/// `734.2s` → `12m14s`-style compaction for ETA display.
fn human_duration(seconds: f64) -> String {
    if !seconds.is_finite() {
        return "--".to_owned();
    }
    let s = seconds.round() as u64;
    if s < 120 {
        format!("{s}s")
    } else if s < 7200 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{}h{:02}m", s / 3600, (s % 3600) / 60)
    }
}

/// The running reporter: owns the sampler thread, prints a final line
/// and joins it on [`ProgressReporter::stop`] (or on drop).
#[derive(Debug)]
pub struct ProgressReporter {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ProgressReporter {
    /// Spawns the sampler thread against `registry`. The thread wakes
    /// every `config.interval`, diffs snapshots and prints one line to
    /// stderr.
    ///
    /// If the OS refuses to spawn the sampler thread the reporter is
    /// returned inert (a warning is printed; the run itself proceeds
    /// unreported rather than aborting).
    #[must_use]
    pub fn start(registry: &'static Registry, config: ProgressConfig) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let spawned = std::thread::Builder::new()
            .name("yac-progress".into())
            .spawn(move || {
                let t0 = Instant::now();
                let mut prev = registry.snapshot();
                let mut last_tick = t0;
                while !stop_flag.load(Ordering::Relaxed) {
                    // Sleep in short slices so stop() returns promptly.
                    std::thread::sleep(Duration::from_millis(25));
                    if last_tick.elapsed() < config.interval {
                        continue;
                    }
                    let interval = last_tick.elapsed();
                    last_tick = Instant::now();
                    let cur = registry.snapshot();
                    eprintln!(
                        "{}",
                        render_progress(&prev, &cur, t0.elapsed(), interval, &config)
                    );
                    prev = cur;
                }
                // Final line so short runs still report once.
                let cur = registry.snapshot();
                let interval = last_tick.elapsed().max(Duration::from_millis(1));
                eprintln!(
                    "{}",
                    render_progress(&prev, &cur, t0.elapsed(), interval, &config)
                );
            });
        let handle = match spawned {
            Ok(handle) => Some(handle),
            Err(e) => {
                eprintln!("[yac] progress reporting disabled: {e}");
                None
            }
        };
        ProgressReporter { stop, handle }
    }

    /// Stops the sampler, printing one final progress line.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ProgressReporter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn config(total: u64, workers: usize) -> ProgressConfig {
        ProgressConfig {
            total_chips: total,
            total_studies: 0,
            workers,
            interval: Duration::from_secs(1),
            label: "test".into(),
        }
    }

    fn snapshots(done_prev: u64, done_cur: u64, exec_ns: u64) -> (Snapshot, Snapshot) {
        let reg = Registry::new();
        reg.enable();
        for _ in 0..done_prev {
            reg.record_phase_nanos(Phase::Sample, 100);
        }
        let prev = reg.snapshot();
        for _ in done_prev..done_cur {
            reg.record_phase_nanos(Phase::Sample, 100);
        }
        if exec_ns > 0 {
            reg.record_phase_nanos(Phase::ShardExec, exec_ns);
        }
        (prev, reg.snapshot())
    }

    #[test]
    fn renders_counts_rate_eta_and_utilization() {
        let (prev, cur) = snapshots(100, 150, 2_000_000_000);
        let line = render_progress(
            &prev,
            &cur,
            Duration::from_secs(3),
            Duration::from_secs(1),
            &config(200, 4),
        );
        assert!(line.contains("150/200 chips (75.0%)"), "{line}");
        assert!(line.contains("50.0 chips/s"), "{line}");
        assert!(line.contains("ETA 1s"), "{line}");
        // 2 s of exec time over 4 workers × 1 s = 50%.
        assert!(line.contains("util 50%"), "{line}");
        // No retries → the health segment is omitted.
        assert!(!line.contains("retries"), "{line}");
    }

    #[test]
    fn idle_tick_falls_back_to_overall_rate_for_eta() {
        let (prev, cur) = snapshots(100, 100, 0);
        let line = render_progress(
            &prev,
            &cur,
            Duration::from_secs(10),
            Duration::from_secs(1),
            &config(200, 4),
        );
        assert!(line.contains("0.0 chips/s"), "{line}");
        // Overall rate 10 chips/s → 100 remaining → 10 s.
        assert!(line.contains("ETA 10s"), "{line}");
    }

    #[test]
    fn zero_progress_shows_unknown_eta_and_no_rate_blowup() {
        let (prev, cur) = snapshots(0, 0, 0);
        let line = render_progress(
            &prev,
            &cur,
            Duration::from_secs(1),
            Duration::from_secs(1),
            &config(200, 4),
        );
        assert!(line.contains("0/200 chips (0.0%)"), "{line}");
        assert!(line.contains("ETA --"), "{line}");
    }

    #[test]
    fn shard_health_counters_surface_when_nonzero() {
        let reg = Registry::new();
        reg.enable();
        let prev = reg.snapshot();
        reg.add(Metric::ShardRetries, 3);
        reg.add(Metric::ShardTimeouts, 1);
        reg.add(Metric::DegradedShards, 2);
        let line = render_progress(
            &prev,
            &reg.snapshot(),
            Duration::from_secs(1),
            Duration::from_secs(1),
            &config(0, 2),
        );
        assert!(
            line.contains("retries 3 (timeouts 1) | degraded 2"),
            "{line}"
        );
    }

    #[test]
    fn done_runs_report_eta_zero_and_clamp_to_total() {
        let (prev, cur) = snapshots(190, 250, 0);
        let line = render_progress(
            &prev,
            &cur,
            Duration::from_secs(5),
            Duration::from_secs(1),
            &config(200, 4),
        );
        // Supervised retries can re-sample chips: the proxy clamps.
        assert!(line.contains("200/200 chips (100.0%)"), "{line}");
        assert!(line.contains("ETA 0s"), "{line}");
    }

    #[test]
    fn sweep_runs_lead_with_a_studies_segment() {
        let reg = Registry::new();
        reg.enable();
        let prev = reg.snapshot();
        reg.add(Metric::StudiesCompleted, 2);
        reg.add(Metric::StudiesDegraded, 1);
        let line = render_progress(
            &prev,
            &reg.snapshot(),
            Duration::from_secs(1),
            Duration::from_secs(1),
            &ProgressConfig {
                total_studies: 6,
                ..config(0, 2)
            },
        );
        assert!(line.contains("study 3/6"), "{line}");
        // Non-sweep configs never show the segment.
        let plain = render_progress(
            &prev,
            &reg.snapshot(),
            Duration::from_secs(1),
            Duration::from_secs(1),
            &config(0, 2),
        );
        assert!(!plain.contains("study"), "{plain}");
    }

    #[test]
    fn human_durations_compact() {
        assert_eq!(human_duration(3.4), "3s");
        assert_eq!(human_duration(119.0), "119s");
        assert_eq!(human_duration(734.0), "12m14s");
        assert_eq!(human_duration(7300.0), "2h01m");
        assert_eq!(human_duration(f64::INFINITY), "--");
    }

    #[test]
    fn reporter_thread_starts_and_stops_cleanly() {
        let reporter = ProgressReporter::start(
            crate::global(),
            ProgressConfig {
                interval: Duration::from_secs(60),
                ..config(10, 1)
            },
        );
        std::thread::sleep(Duration::from_millis(50));
        reporter.stop();
    }
}
