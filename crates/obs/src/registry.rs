//! The lock-free metrics registry: named counters, phase timers and
//! log₂-bucketed latency histograms, all plain atomics.
//!
//! Design constraints (enforced by tests):
//!
//! * **Zero-cost when disabled** — every hook is one relaxed atomic load
//!   and a branch; no lock, no allocation, no clock read.
//! * **Observation only** — nothing in here feeds back into simulation
//!   state, so enabling metrics can never change a study's results.
//! * **Thread-safe by construction** — all state is `AtomicU64`;
//!   concurrent increments from any number of threads sum exactly.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Every counter the instrumented crates report.
///
/// The `#[repr(usize)]` discriminants index the registry's counter
/// array, so adding a metric is append-only cheap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Metric {
    /// Dies produced by Monte Carlo sampling (valid ones).
    DiesSampled,
    /// Dies quarantined during sampling (panic, fault plan, validation).
    SampleFailures,
    /// Circuit-model evaluations (two per chip: regular + horizontal).
    CircuitEvals,
    /// Chips recorded in a quarantine ledger.
    ChipsQuarantined,
    /// Chips classified against yield constraints.
    ChipsClassified,
    /// Classified chips that violated a constraint (base-case losses).
    ChipsLost,
    /// Scheme rescue attempts (one per scheme per failing chip).
    RescueAttempts,
    /// Rescue attempts that saved the chip.
    RescueSaves,
    /// Benchmark pipeline simulations completed.
    BenchmarksSimulated,
    /// Benchmark workers quarantined (panic or non-finite CPI).
    BenchmarkFailures,
    /// Micro-ops committed in measurement windows.
    UopsCommitted,
    /// Cycles simulated in measurement windows.
    SimCycles,
    /// Synthetic trace generators constructed.
    TracesCreated,
    /// Cache accesses (all levels) flushed from hierarchy stats.
    CacheAccesses,
    /// Cache misses (all levels) flushed from hierarchy stats.
    CacheMisses,
    /// Study checkpoints written to disk.
    CheckpointsWritten,
    /// Supervised-executor shards that ran to completion.
    ShardsCompleted,
    /// Shard attempts re-queued after a failure (panic or timeout).
    ShardRetries,
    /// Shard attempts cancelled by the deadline watchdog.
    ShardTimeouts,
    /// Shards that exhausted their retry budget and were recorded as
    /// degraded (their chips are missing from the merged population).
    DegradedShards,
}

impl Metric {
    /// Number of metrics (the counter array's length).
    pub const COUNT: usize = 20;

    /// All metrics, in declaration order.
    pub const ALL: [Metric; Metric::COUNT] = [
        Metric::DiesSampled,
        Metric::SampleFailures,
        Metric::CircuitEvals,
        Metric::ChipsQuarantined,
        Metric::ChipsClassified,
        Metric::ChipsLost,
        Metric::RescueAttempts,
        Metric::RescueSaves,
        Metric::BenchmarksSimulated,
        Metric::BenchmarkFailures,
        Metric::UopsCommitted,
        Metric::SimCycles,
        Metric::TracesCreated,
        Metric::CacheAccesses,
        Metric::CacheMisses,
        Metric::CheckpointsWritten,
        Metric::ShardsCompleted,
        Metric::ShardRetries,
        Metric::ShardTimeouts,
        Metric::DegradedShards,
    ];

    /// The stable snake_case name used in manifests.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Metric::DiesSampled => "dies_sampled",
            Metric::SampleFailures => "sample_failures",
            Metric::CircuitEvals => "circuit_evals",
            Metric::ChipsQuarantined => "chips_quarantined",
            Metric::ChipsClassified => "chips_classified",
            Metric::ChipsLost => "chips_lost",
            Metric::RescueAttempts => "rescue_attempts",
            Metric::RescueSaves => "rescue_saves",
            Metric::BenchmarksSimulated => "benchmarks_simulated",
            Metric::BenchmarkFailures => "benchmark_failures",
            Metric::UopsCommitted => "uops_committed",
            Metric::SimCycles => "sim_cycles",
            Metric::TracesCreated => "traces_created",
            Metric::CacheAccesses => "cache_accesses",
            Metric::CacheMisses => "cache_misses",
            Metric::CheckpointsWritten => "checkpoints_written",
            Metric::ShardsCompleted => "shards_completed",
            Metric::ShardRetries => "shard_retries",
            Metric::ShardTimeouts => "shard_timeouts",
            Metric::DegradedShards => "degraded_shards",
        }
    }
}

/// The pipeline phases a study's wall time is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Phase {
    /// Monte Carlo variation sampling.
    Sample,
    /// Circuit-model evaluation of sampled dies.
    CircuitEval,
    /// Constraint classification.
    Classify,
    /// Scheme rescue (YAPD / H-YAPD / VACA / Hybrid apply).
    Rescue,
    /// Pipeline (CPI) simulation.
    PipelineSim,
    /// Report rendering and serialization.
    Report,
    /// One supervised-executor shard attempt (per-worker busy time; the
    /// ratio of this phase's total to `workers × wall` is utilization).
    ShardExec,
}

impl Phase {
    /// Number of phases (the timer arrays' length).
    pub const COUNT: usize = 7;

    /// All phases, in pipeline order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Sample,
        Phase::CircuitEval,
        Phase::Classify,
        Phase::Rescue,
        Phase::PipelineSim,
        Phase::Report,
        Phase::ShardExec,
    ];

    /// The stable snake_case name used in manifests.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::Sample => "sample",
            Phase::CircuitEval => "circuit_eval",
            Phase::Classify => "classify",
            Phase::Rescue => "rescue",
            Phase::PipelineSim => "pipeline_sim",
            Phase::Report => "report",
            Phase::ShardExec => "shard_exec",
        }
    }
}

/// Number of log₂ nanosecond buckets (covers 1 ns .. ~584 years).
pub(crate) const HIST_BUCKETS: usize = 64;

/// A lock-free histogram of durations, bucketed by `log₂(nanos)`.
///
/// Bucket `i` holds samples with `floor(log₂(ns)) == i` (bucket 0 also
/// takes 0 ns samples). Good to a factor of two — plenty for spotting
/// orders-of-magnitude latency shifts without per-sample allocation.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    total_ns: AtomicU64,
}

impl Histogram {
    pub(crate) const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
        }
    }

    pub(crate) fn record(&self, nanos: u64) {
        let bucket = if nanos == 0 {
            0
        } else {
            63 - nanos.leading_zeros() as usize
        };
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded durations, nanoseconds.
    #[must_use]
    pub fn total_nanos(&self) -> u64 {
        self.total_ns.load(Ordering::Relaxed)
    }

    /// Mean recorded duration in nanoseconds (0 when empty).
    #[must_use]
    pub fn mean_nanos(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.total_nanos() as f64 / n as f64
        }
    }

    /// Upper bound (in nanoseconds) of the bucket containing the `q`
    /// quantile, `0.0 <= q <= 1.0`; 0 when empty. A factor-of-two
    /// estimate, by construction.
    #[must_use]
    pub fn quantile_nanos(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return 1u64 << (i + 1).min(63);
            }
        }
        u64::MAX
    }

    pub(crate) fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
    }
}

/// The registry: a fixed array of counters plus per-phase timer state.
///
/// All mutation goes through relaxed atomics — safe to share freely
/// across threads (`&Registry` is all any hook needs).
#[derive(Debug)]
pub struct Registry {
    enabled: AtomicBool,
    counters: [AtomicU64; Metric::COUNT],
    phase_ns: [AtomicU64; Phase::COUNT],
    phase_calls: [AtomicU64; Phase::COUNT],
    phase_hist: [Histogram; Phase::COUNT],
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// A fresh, disabled registry with every counter at zero.
    #[must_use]
    pub const fn new() -> Self {
        Registry {
            enabled: AtomicBool::new(false),
            counters: [const { AtomicU64::new(0) }; Metric::COUNT],
            phase_ns: [const { AtomicU64::new(0) }; Phase::COUNT],
            phase_calls: [const { AtomicU64::new(0) }; Phase::COUNT],
            phase_hist: [const { Histogram::new() }; Phase::COUNT],
        }
    }

    /// Starts collecting.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Stops collecting (already-recorded values are kept).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether hooks currently record.
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Increments `metric` by one. No-op while disabled.
    #[inline]
    pub fn inc(&self, metric: Metric) {
        self.add(metric, 1);
    }

    /// Adds `n` to `metric`. No-op while disabled.
    #[inline]
    pub fn add(&self, metric: Metric, n: u64) {
        if self.is_enabled() {
            self.counters[metric as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value of `metric`.
    #[must_use]
    pub fn counter(&self, metric: Metric) -> u64 {
        self.counters[metric as usize].load(Ordering::Relaxed)
    }

    /// Starts a scoped timer for `phase`. While disabled the guard is
    /// inert — it does not even read the clock. Guards may nest (same or
    /// different phases); each guard attributes its own inclusive
    /// lifetime, so nested time is counted in every enclosing phase.
    #[inline]
    pub fn phase(&self, phase: Phase) -> PhaseGuard<'_> {
        PhaseGuard {
            registry: self,
            phase,
            start: if self.is_enabled() {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// Runs `f` inside a [`Registry::phase`] guard for `phase`.
    #[inline]
    pub fn time<R>(&self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let _guard = self.phase(phase);
        f()
    }

    /// Directly attributes `nanos` to `phase` (one call, one histogram
    /// sample). Used where a duration is measured externally — e.g. by a
    /// worker thread that outlives its guard scope. No-op while disabled.
    pub fn record_phase_nanos(&self, phase: Phase, nanos: u64) {
        if !self.is_enabled() {
            return;
        }
        self.record_phase_nanos_unchecked(phase, nanos);
    }

    /// [`Registry::record_phase_nanos`] without the enabled check — used
    /// by guards whose clock was started while collection was on, so a
    /// mid-flight `disable` doesn't drop a measurement already underway.
    fn record_phase_nanos_unchecked(&self, phase: Phase, nanos: u64) {
        self.phase_ns[phase as usize].fetch_add(nanos, Ordering::Relaxed);
        self.phase_calls[phase as usize].fetch_add(1, Ordering::Relaxed);
        self.phase_hist[phase as usize].record(nanos);
    }

    /// Total nanoseconds attributed to `phase` (summed over all guards,
    /// including concurrent ones — a parallel phase can accumulate more
    /// than wall-clock time).
    #[must_use]
    pub fn phase_nanos(&self, phase: Phase) -> u64 {
        self.phase_ns[phase as usize].load(Ordering::Relaxed)
    }

    /// Number of completed guards for `phase`.
    #[must_use]
    pub fn phase_calls(&self, phase: Phase) -> u64 {
        self.phase_calls[phase as usize].load(Ordering::Relaxed)
    }

    /// The latency histogram of individual `phase` guard lifetimes.
    #[must_use]
    pub fn phase_histogram(&self, phase: Phase) -> &Histogram {
        &self.phase_hist[phase as usize]
    }

    /// Zeroes every counter, timer and histogram (the enabled flag is
    /// left as-is).
    pub fn reset(&self) {
        for c in &self.counters {
            c.store(0, Ordering::Relaxed);
        }
        for p in &self.phase_ns {
            p.store(0, Ordering::Relaxed);
        }
        for p in &self.phase_calls {
            p.store(0, Ordering::Relaxed);
        }
        for h in &self.phase_hist {
            h.reset();
        }
    }

    /// A plain-data copy of every counter and phase timer.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: Metric::ALL.map(|m| self.counter(m)),
            phase_nanos: Phase::ALL.map(|p| self.phase_nanos(p)),
            phase_calls: Phase::ALL.map(|p| self.phase_calls(p)),
        }
    }
}

/// A point-in-time, plain-data view of a [`Registry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter values, indexed like [`Metric::ALL`].
    pub counters: [u64; Metric::COUNT],
    /// Accumulated per-phase nanoseconds, indexed like [`Phase::ALL`].
    pub phase_nanos: [u64; Phase::COUNT],
    /// Completed guard counts, indexed like [`Phase::ALL`].
    pub phase_calls: [u64; Phase::COUNT],
}

impl Snapshot {
    /// Counter value by metric.
    #[must_use]
    pub fn counter(&self, metric: Metric) -> u64 {
        self.counters[metric as usize]
    }

    /// Accumulated nanoseconds by phase.
    #[must_use]
    pub fn phase_nanos(&self, phase: Phase) -> u64 {
        self.phase_nanos[phase as usize]
    }
}

/// Scoped timer returned by [`Registry::phase`]; attributes its
/// lifetime on drop.
#[derive(Debug)]
#[must_use = "a phase guard records time when dropped; binding it to _ drops it immediately"]
pub struct PhaseGuard<'a> {
    registry: &'a Registry,
    phase: Phase,
    start: Option<Instant>,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            // Clamp to u64 (585 years of nanos) rather than truncate.
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.registry
                .record_phase_nanos_unchecked(self.phase, nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_and_phase_tables_are_consistent() {
        for (i, m) in Metric::ALL.iter().enumerate() {
            assert_eq!(*m as usize, i, "{} out of order", m.name());
        }
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(*p as usize, i, "{} out of order", p.name());
        }
        let mut names: Vec<&str> = Metric::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Metric::COUNT, "duplicate metric name");
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = Registry::new();
        reg.inc(Metric::CircuitEvals);
        reg.add(Metric::UopsCommitted, 100);
        reg.record_phase_nanos(Phase::Sample, 42);
        reg.time(Phase::Classify, || ());
        assert_eq!(reg.snapshot(), Registry::new().snapshot());
    }

    #[test]
    fn enabling_records_and_reset_clears() {
        let reg = Registry::new();
        reg.enable();
        reg.add(Metric::DiesSampled, 7);
        reg.record_phase_nanos(Phase::Sample, 1_000);
        assert_eq!(reg.counter(Metric::DiesSampled), 7);
        assert_eq!(reg.phase_nanos(Phase::Sample), 1_000);
        assert_eq!(reg.phase_histogram(Phase::Sample).count(), 1);
        reg.reset();
        assert_eq!(reg.counter(Metric::DiesSampled), 0);
        assert_eq!(reg.phase_nanos(Phase::Sample), 0);
        assert_eq!(reg.phase_histogram(Phase::Sample).count(), 0);
        assert!(reg.is_enabled(), "reset must not flip the enabled bit");
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(1024);
        h.record(1500);
        assert_eq!(h.count(), 4);
        assert_eq!(h.total_nanos(), 2525);
        assert!((h.mean_nanos() - 631.25).abs() < 1e-9);
        // All quantiles land on bucket upper bounds (powers of two).
        assert_eq!(h.quantile_nanos(0.0), 2);
        assert_eq!(h.quantile_nanos(1.0), 2048);
    }

    #[test]
    fn quantiles_are_monotone() {
        let h = Histogram::new();
        for ns in [10u64, 100, 1_000, 10_000, 100_000] {
            for _ in 0..20 {
                h.record(ns);
            }
        }
        let mut last = 0;
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile_nanos(q);
            assert!(v >= last, "quantile({q}) = {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn time_returns_the_closure_value() {
        let reg = Registry::new();
        reg.enable();
        let out = reg.time(Phase::Report, || 21 * 2);
        assert_eq!(out, 42);
        assert_eq!(reg.phase_calls(Phase::Report), 1);
    }
}
