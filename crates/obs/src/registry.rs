//! The lock-free metrics registry: named counters, phase timers and
//! log₂-bucketed latency histograms, all plain atomics.
//!
//! Design constraints (enforced by tests):
//!
//! * **Zero-cost when disabled** — every hook is one relaxed atomic load
//!   and a branch; no lock, no allocation, no clock read.
//! * **Observation only** — nothing in here feeds back into simulation
//!   state, so enabling metrics can never change a study's results.
//! * **Thread-safe by construction** — all state is `AtomicU64`;
//!   concurrent increments from any number of threads sum exactly.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Generates a dense `#[repr(usize)]` enum together with its `COUNT`,
/// `ALL` table and stable `name()` — all from one variant list, so the
/// three can never desync: `COUNT` **is** `ALL.len()`, and both are
/// derived from the same expansion that defines the discriminants.
/// Adding a variant is a one-line change.
macro_rules! registry_enum {
    (
        $(#[$enum_meta:meta])*
        $vis:vis enum $name:ident {
            $( $(#[$variant_meta:meta])* $variant:ident => $string:literal ),+ $(,)?
        }
    ) => {
        $(#[$enum_meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(usize)]
        $vis enum $name {
            $( $(#[$variant_meta])* $variant ),+
        }

        impl $name {
            /// Number of variants (the registry arrays' length). Always
            /// equal to `ALL.len()` by construction.
            $vis const COUNT: usize = {
                let all = [ $( $name::$variant ),+ ];
                all.len()
            };

            /// All variants, in declaration order.
            $vis const ALL: [$name; $name::COUNT] = [ $( $name::$variant ),+ ];

            /// The stable snake_case name used in manifests.
            #[must_use]
            $vis fn name(self) -> &'static str {
                match self {
                    $( $name::$variant => $string ),+
                }
            }

            /// The variant whose discriminant is `index`, if any.
            #[must_use]
            $vis fn from_index(index: usize) -> Option<$name> {
                $name::ALL.get(index).copied()
            }
        }
    };
}

registry_enum! {
    /// Every counter the instrumented crates report.
    ///
    /// The `#[repr(usize)]` discriminants index the registry's counter
    /// array, so adding a metric is append-only cheap.
    pub enum Metric {
        /// Dies produced by Monte Carlo sampling (valid ones).
        DiesSampled => "dies_sampled",
        /// Dies quarantined during sampling (panic, fault plan, validation).
        SampleFailures => "sample_failures",
        /// Circuit-model evaluations (two per chip: regular + horizontal).
        CircuitEvals => "circuit_evals",
        /// Chips recorded in a quarantine ledger.
        ChipsQuarantined => "chips_quarantined",
        /// Chips classified against yield constraints.
        ChipsClassified => "chips_classified",
        /// Classified chips that violated a constraint (base-case losses).
        ChipsLost => "chips_lost",
        /// Scheme rescue attempts (one per scheme per failing chip).
        RescueAttempts => "rescue_attempts",
        /// Rescue attempts that saved the chip.
        RescueSaves => "rescue_saves",
        /// Benchmark pipeline simulations completed.
        BenchmarksSimulated => "benchmarks_simulated",
        /// Benchmark workers quarantined (panic or non-finite CPI).
        BenchmarkFailures => "benchmark_failures",
        /// Micro-ops committed in measurement windows.
        UopsCommitted => "uops_committed",
        /// Cycles simulated in measurement windows.
        SimCycles => "sim_cycles",
        /// Synthetic trace generators constructed.
        TracesCreated => "traces_created",
        /// Cache accesses (all levels) flushed from hierarchy stats.
        CacheAccesses => "cache_accesses",
        /// Cache misses (all levels) flushed from hierarchy stats.
        CacheMisses => "cache_misses",
        /// Study checkpoints written to disk.
        CheckpointsWritten => "checkpoints_written",
        /// Supervised-executor shards that ran to completion.
        ShardsCompleted => "shards_completed",
        /// Shard attempts re-queued after a failure (panic or timeout).
        ShardRetries => "shard_retries",
        /// Shard attempts cancelled by the deadline watchdog.
        ShardTimeouts => "shard_timeouts",
        /// Shards that exhausted their retry budget and were recorded as
        /// degraded (their chips are missing from the merged population).
        DegradedShards => "degraded_shards",
        /// Sweep studies that ran to completion with every chip observed.
        StudiesCompleted => "studies_completed",
        /// Sweep studies that finished degraded (missing chips).
        StudiesDegraded => "studies_degraded",
        /// Sweep studies that failed outright (poisoned config or panic).
        StudiesFailed => "studies_failed",
        /// Study queries received by the sweep service (before admission).
        QueriesReceived => "queries_received",
        /// Study queries answered with a result (cached or computed).
        QueriesServed => "queries_served",
        /// Study queries rejected with typed backpressure (`Busy`).
        QueriesBusy => "queries_busy",
        /// Service result-cache lookups answered from the cache.
        ResultCacheHits => "result_cache_hits",
        /// Service result-cache lookups that missed and forced a compute.
        ResultCacheMisses => "result_cache_misses",
        /// Service result-cache entries evicted to honour the byte budget.
        ResultCacheEvictions => "result_cache_evictions",
        /// Tasks moved between work-stealing worker deques by steal-half.
        TasksStolen => "tasks_stolen",
        /// Connections refused by the serve loop's connection cap.
        ConnsRejected => "conns_rejected",
        /// Connections evicted for blowing a per-frame read/write deadline.
        SlowClientsEvicted => "slow_clients_evicted",
        /// Resilient-client retries (transient failures and `Busy` replies).
        RetryAttempts => "retry_attempts",
        /// Client circuit-breaker trips from closed/half-open to open.
        BreakerOpens => "breaker_opens",
        /// Client circuit-breaker probes from open to half-open.
        BreakerHalfOpens => "breaker_half_opens",
        /// Faults injected into network streams by the chaos layer.
        NetFaultsInjected => "net_faults_injected",
        /// Study queries refused because the service is draining.
        QueriesDraining => "queries_draining",
        /// Heartbeat budgets blown: a busy lane published no progress
        /// tick within the stall budget.
        HeartbeatsMissed => "heartbeats_missed",
        /// Stalled shard attempts abandoned and resubmitted to a fresh
        /// worker by the health sentinel.
        ShardsReassigned => "shards_reassigned",
        /// Completed background scrub passes over the result cache.
        ScrubPasses => "scrub_passes",
        /// Cache entries whose stored CRC no longer matched their bytes
        /// and were quarantined (served as a miss until repaired).
        EntriesQuarantined => "entries_quarantined",
        /// Quarantined cache entries overwritten by a fresh recompute.
        EntriesRepaired => "entries_repaired",
        /// Worker pools rebuilt in place after losing worker threads.
        PoolRestarts => "pool_restarts",
        /// Queries answered with a typed `Retryable` because the pool
        /// was rebuilt underneath them.
        QueriesRetryable => "queries_retryable",
    }
}

registry_enum! {
    /// The pipeline phases a study's time is attributed to.
    pub enum Phase {
        /// Monte Carlo variation sampling.
        Sample => "sample",
        /// Circuit-model evaluation of sampled dies.
        CircuitEval => "circuit_eval",
        /// Constraint classification.
        Classify => "classify",
        /// Scheme rescue (YAPD / H-YAPD / VACA / Hybrid apply).
        Rescue => "rescue",
        /// Pipeline (CPI) simulation.
        PipelineSim => "pipeline_sim",
        /// Report rendering and serialization.
        Report => "report",
        /// One supervised-executor shard attempt (per-worker busy time; the
        /// ratio of this phase's total to `workers × wall` is utilization).
        ShardExec => "shard_exec",
        /// One sweep-grid study end to end (population, classify, losses).
        StudyExec => "study_exec",
        /// One service query end to end (cache lookup through compute).
        QueryExec => "query_exec",
    }
}

/// Number of log₂ nanosecond buckets (covers 1 ns .. ~584 years).
pub(crate) const HIST_BUCKETS: usize = 64;

/// A lock-free histogram of durations, bucketed by `log₂(nanos)`.
///
/// Bucket `i` holds samples with `floor(log₂(ns)) == i` (bucket 0 also
/// takes 0 ns samples). Good to a factor of two — plenty for spotting
/// orders-of-magnitude latency shifts without per-sample allocation.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    total_ns: AtomicU64,
}

impl Histogram {
    pub(crate) const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
        }
    }

    pub(crate) fn record(&self, nanos: u64) {
        let bucket = if nanos == 0 {
            0
        } else {
            63 - nanos.leading_zeros() as usize
        };
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded durations, nanoseconds.
    #[must_use]
    pub fn total_nanos(&self) -> u64 {
        self.total_ns.load(Ordering::Relaxed)
    }

    /// Mean recorded duration in nanoseconds (0 when empty).
    #[must_use]
    pub fn mean_nanos(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.total_nanos() as f64 / n as f64
        }
    }

    /// Upper bound (in nanoseconds) of the bucket containing the `q`
    /// quantile, `0.0 <= q <= 1.0`; 0 when empty. A factor-of-two
    /// estimate, by construction.
    #[must_use]
    pub fn quantile_nanos(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return 1u64 << (i + 1).min(63);
            }
        }
        u64::MAX
    }

    /// The non-empty log₂ buckets as `(le_ns, count)` pairs, ascending:
    /// `count` samples fell in `(le_ns/2, le_ns]` nanoseconds (the first
    /// bucket also takes 0 ns samples). This is the raw data behind
    /// [`Histogram::quantile_nanos`]; exporting it lets downstream tools
    /// compute whatever quantiles they want instead of trusting our
    /// factor-of-two p99.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let count = b.load(Ordering::Relaxed);
                (count > 0).then_some((1u64 << (i + 1).min(63), count))
            })
            .collect()
    }

    pub(crate) fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
    }
}

/// The registry: a fixed array of counters plus per-phase timer state.
///
/// All mutation goes through relaxed atomics — safe to share freely
/// across threads (`&Registry` is all any hook needs).
#[derive(Debug)]
pub struct Registry {
    enabled: AtomicBool,
    /// Time origin for wall-clock phase tracking, set on first use
    /// (`Instant` has no const constructor).
    epoch: OnceLock<Instant>,
    counters: [AtomicU64; Metric::COUNT],
    phase_ns: [AtomicU64; Phase::COUNT],
    phase_calls: [AtomicU64; Phase::COUNT],
    phase_hist: [Histogram; Phase::COUNT],
    /// Wall-clock time during which ≥ 1 guard of the phase was open —
    /// the union of guard intervals, not their sum.
    phase_wall_ns: [AtomicU64; Phase::COUNT],
    /// Currently-open guard count per phase.
    phase_active: [AtomicU64; Phase::COUNT],
    /// Epoch nanos at which `phase_active` last went 0 → 1.
    phase_open_ns: [AtomicU64; Phase::COUNT],
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// A fresh, disabled registry with every counter at zero.
    #[must_use]
    pub const fn new() -> Self {
        Registry {
            enabled: AtomicBool::new(false),
            epoch: OnceLock::new(),
            counters: [const { AtomicU64::new(0) }; Metric::COUNT],
            phase_ns: [const { AtomicU64::new(0) }; Phase::COUNT],
            phase_calls: [const { AtomicU64::new(0) }; Phase::COUNT],
            phase_hist: [const { Histogram::new() }; Phase::COUNT],
            phase_wall_ns: [const { AtomicU64::new(0) }; Phase::COUNT],
            phase_active: [const { AtomicU64::new(0) }; Phase::COUNT],
            phase_open_ns: [const { AtomicU64::new(0) }; Phase::COUNT],
        }
    }

    /// Nanoseconds since this registry's epoch (set on first call).
    fn now_ns(&self) -> u64 {
        let epoch = self.epoch.get_or_init(Instant::now);
        u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Starts collecting.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Stops collecting (already-recorded values are kept).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether hooks currently record.
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Increments `metric` by one. No-op while disabled.
    #[inline]
    pub fn inc(&self, metric: Metric) {
        self.add(metric, 1);
    }

    /// Adds `n` to `metric`. No-op while disabled.
    #[inline]
    pub fn add(&self, metric: Metric, n: u64) {
        if self.is_enabled() {
            self.counters[metric as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value of `metric`.
    #[must_use]
    pub fn counter(&self, metric: Metric) -> u64 {
        self.counters[metric as usize].load(Ordering::Relaxed)
    }

    /// Starts a scoped timer for `phase`. While disabled the guard is
    /// inert — it does not even read the clock. Guards may nest (same or
    /// different phases); each guard attributes its own inclusive
    /// lifetime, so nested time is counted in every enclosing phase.
    #[inline]
    pub fn phase(&self, phase: Phase) -> PhaseGuard<'_> {
        let start = if self.is_enabled() {
            self.phase_opened(phase);
            Some(Instant::now())
        } else {
            None
        };
        PhaseGuard {
            registry: self,
            phase,
            start,
        }
    }

    /// Wall-clock bookkeeping when a guard opens: if this is the first
    /// open guard of the phase, remember when the covered interval began.
    fn phase_opened(&self, phase: Phase) {
        let now = self.now_ns();
        if self.phase_active[phase as usize].fetch_add(1, Ordering::AcqRel) == 0 {
            self.phase_open_ns[phase as usize].store(now, Ordering::Release);
        }
    }

    /// Wall-clock bookkeeping when a guard closes: the last guard out
    /// accumulates the covered interval. Interleavings where one thread's
    /// open races another's close can over-count by the scheduling gap
    /// between the two — wall times are honest to within that jitter,
    /// which is why the manifest labels them separately from the exact
    /// summed `cpu_time`.
    fn phase_closed(&self, phase: Phase) {
        let now = self.now_ns();
        if self.phase_active[phase as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
            let opened = self.phase_open_ns[phase as usize].load(Ordering::Acquire);
            self.phase_wall_ns[phase as usize]
                .fetch_add(now.saturating_sub(opened), Ordering::Relaxed);
        }
    }

    /// Runs `f` inside a [`Registry::phase`] guard for `phase`.
    #[inline]
    pub fn time<R>(&self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let _guard = self.phase(phase);
        f()
    }

    /// Directly attributes `nanos` to `phase` (one call, one histogram
    /// sample). Used where a duration is measured externally — e.g. by a
    /// worker thread that outlives its guard scope. No-op while disabled.
    pub fn record_phase_nanos(&self, phase: Phase, nanos: u64) {
        if !self.is_enabled() {
            return;
        }
        self.record_phase_nanos_unchecked(phase, nanos);
    }

    /// [`Registry::record_phase_nanos`] without the enabled check — used
    /// by guards whose clock was started while collection was on, so a
    /// mid-flight `disable` doesn't drop a measurement already underway.
    fn record_phase_nanos_unchecked(&self, phase: Phase, nanos: u64) {
        self.phase_ns[phase as usize].fetch_add(nanos, Ordering::Relaxed);
        self.phase_calls[phase as usize].fetch_add(1, Ordering::Relaxed);
        self.phase_hist[phase as usize].record(nanos);
    }

    /// Total nanoseconds attributed to `phase` (summed over all guards,
    /// including concurrent ones — a parallel phase can accumulate more
    /// than wall-clock time). This is CPU-time-like; see
    /// [`Registry::phase_wall_nanos`] for the wall-clock view.
    #[must_use]
    pub fn phase_nanos(&self, phase: Phase) -> u64 {
        self.phase_ns[phase as usize].load(Ordering::Relaxed)
    }

    /// Wall-clock nanoseconds during which at least one guard of `phase`
    /// was open — the union of guard intervals, never more than elapsed
    /// real time (up to scheduling jitter; see [`Registry::phase_nanos`]
    /// for the exact summed view). Externally-measured durations fed in
    /// through [`Registry::record_phase_nanos`] do not contribute here.
    #[must_use]
    pub fn phase_wall_nanos(&self, phase: Phase) -> u64 {
        self.phase_wall_ns[phase as usize].load(Ordering::Relaxed)
    }

    /// Number of completed guards for `phase`.
    #[must_use]
    pub fn phase_calls(&self, phase: Phase) -> u64 {
        self.phase_calls[phase as usize].load(Ordering::Relaxed)
    }

    /// The latency histogram of individual `phase` guard lifetimes.
    #[must_use]
    pub fn phase_histogram(&self, phase: Phase) -> &Histogram {
        &self.phase_hist[phase as usize]
    }

    /// Zeroes every counter, timer and histogram (the enabled flag is
    /// left as-is).
    pub fn reset(&self) {
        for c in &self.counters {
            c.store(0, Ordering::Relaxed);
        }
        for p in &self.phase_ns {
            p.store(0, Ordering::Relaxed);
        }
        for p in &self.phase_calls {
            p.store(0, Ordering::Relaxed);
        }
        for h in &self.phase_hist {
            h.reset();
        }
        for p in &self.phase_wall_ns {
            p.store(0, Ordering::Relaxed);
        }
        // `phase_active` is deliberately left alone: open guards will
        // still close and must not underflow the count.
    }

    /// A plain-data copy of every counter and phase timer.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: Metric::ALL.map(|m| self.counter(m)),
            phase_nanos: Phase::ALL.map(|p| self.phase_nanos(p)),
            phase_calls: Phase::ALL.map(|p| self.phase_calls(p)),
            phase_wall_nanos: Phase::ALL.map(|p| self.phase_wall_nanos(p)),
        }
    }
}

/// A point-in-time, plain-data view of a [`Registry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter values, indexed like [`Metric::ALL`].
    pub counters: [u64; Metric::COUNT],
    /// Accumulated per-phase nanoseconds, indexed like [`Phase::ALL`].
    pub phase_nanos: [u64; Phase::COUNT],
    /// Completed guard counts, indexed like [`Phase::ALL`].
    pub phase_calls: [u64; Phase::COUNT],
    /// Per-phase wall-clock (union) nanoseconds, indexed like
    /// [`Phase::ALL`].
    pub phase_wall_nanos: [u64; Phase::COUNT],
}

impl Snapshot {
    /// Counter value by metric.
    #[must_use]
    pub fn counter(&self, metric: Metric) -> u64 {
        self.counters[metric as usize]
    }

    /// Accumulated nanoseconds by phase.
    #[must_use]
    pub fn phase_nanos(&self, phase: Phase) -> u64 {
        self.phase_nanos[phase as usize]
    }
}

/// Scoped timer returned by [`Registry::phase`]; attributes its
/// lifetime on drop.
#[derive(Debug)]
#[must_use = "a phase guard records time when dropped; binding it to _ drops it immediately"]
pub struct PhaseGuard<'a> {
    registry: &'a Registry,
    phase: Phase,
    start: Option<Instant>,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            // Clamp to u64 (585 years of nanos) rather than truncate.
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.registry
                .record_phase_nanos_unchecked(self.phase, nanos);
            self.registry.phase_closed(self.phase);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_and_phase_tables_are_consistent() {
        for (i, m) in Metric::ALL.iter().enumerate() {
            assert_eq!(*m as usize, i, "{} out of order", m.name());
            assert_eq!(Metric::from_index(i), Some(*m));
        }
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(*p as usize, i, "{} out of order", p.name());
            assert_eq!(Phase::from_index(i), Some(*p));
        }
        assert_eq!(Metric::from_index(Metric::COUNT), None);
        assert_eq!(Phase::from_index(Phase::COUNT), None);
        let mut names: Vec<&str> = Metric::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Metric::COUNT, "duplicate metric name");
    }

    #[test]
    fn wall_time_is_union_of_guard_intervals() {
        let reg = Registry::new();
        reg.enable();
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let _g = reg.phase(Phase::PipelineSim);
                    std::thread::sleep(std::time::Duration::from_millis(15));
                });
            }
        });
        let total = t0.elapsed().as_nanos() as u64;
        let cpu = reg.phase_nanos(Phase::PipelineSim);
        let wall = reg.phase_wall_nanos(Phase::PipelineSim);
        // Four concurrent 15 ms guards: the summed (CPU-like) time is
        // ~60 ms, the union wall time is bounded by elapsed real time.
        assert!(cpu >= 4 * 15_000_000, "cpu {cpu}");
        assert!(wall > 0 && wall <= total, "wall {wall} vs total {total}");
    }

    #[test]
    fn external_durations_do_not_contribute_wall_time() {
        let reg = Registry::new();
        reg.enable();
        reg.record_phase_nanos(Phase::ShardExec, 1_000_000);
        assert_eq!(reg.phase_nanos(Phase::ShardExec), 1_000_000);
        assert_eq!(reg.phase_wall_nanos(Phase::ShardExec), 0);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = Registry::new();
        reg.inc(Metric::CircuitEvals);
        reg.add(Metric::UopsCommitted, 100);
        reg.record_phase_nanos(Phase::Sample, 42);
        reg.time(Phase::Classify, || ());
        assert_eq!(reg.snapshot(), Registry::new().snapshot());
    }

    #[test]
    fn enabling_records_and_reset_clears() {
        let reg = Registry::new();
        reg.enable();
        reg.add(Metric::DiesSampled, 7);
        reg.record_phase_nanos(Phase::Sample, 1_000);
        assert_eq!(reg.counter(Metric::DiesSampled), 7);
        assert_eq!(reg.phase_nanos(Phase::Sample), 1_000);
        assert_eq!(reg.phase_histogram(Phase::Sample).count(), 1);
        reg.reset();
        assert_eq!(reg.counter(Metric::DiesSampled), 0);
        assert_eq!(reg.phase_nanos(Phase::Sample), 0);
        assert_eq!(reg.phase_histogram(Phase::Sample).count(), 0);
        assert!(reg.is_enabled(), "reset must not flip the enabled bit");
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(1024);
        h.record(1500);
        assert_eq!(h.count(), 4);
        assert_eq!(h.total_nanos(), 2525);
        assert!((h.mean_nanos() - 631.25).abs() < 1e-9);
        // All quantiles land on bucket upper bounds (powers of two).
        assert_eq!(h.quantile_nanos(0.0), 2);
        assert_eq!(h.quantile_nanos(1.0), 2048);
    }

    #[test]
    fn quantiles_are_monotone() {
        let h = Histogram::new();
        for ns in [10u64, 100, 1_000, 10_000, 100_000] {
            for _ in 0..20 {
                h.record(ns);
            }
        }
        let mut last = 0;
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile_nanos(q);
            assert!(v >= last, "quantile({q}) = {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn time_returns_the_closure_value() {
        let reg = Registry::new();
        reg.enable();
        let out = reg.time(Phase::Report, || 21 * 2);
        assert_eq!(out, 42);
        assert_eq!(reg.phase_calls(Phase::Report), 1);
    }
}
