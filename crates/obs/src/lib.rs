//! Observability for the yield-study pipeline: a lock-free metrics
//! registry (counters, phase timers, latency histograms), a structured
//! event journal with Perfetto/NDJSON exporters, a live progress
//! reporter, and a machine-readable run manifest.
//!
//! The whole layer is **zero-cost when disabled**: every hook is guarded
//! by one relaxed atomic load, takes no lock and performs no allocation,
//! and enabling it never changes any simulation result — metrics and
//! traces are strictly observational. The hot paths of every other crate
//! (`yac_variation` sampling, `yac_circuit` evaluation, `yac_core`
//! classification, scheme rescue and the supervised shard executor, the
//! `yac_pipeline` simulator) call
//! the free functions in this crate against the process-global
//! [`Registry`] and [`trace::Journal`]; a study driver that wants
//! numbers calls [`enable`], runs, and snapshots a [`RunManifest`]; one
//! that wants a timeline calls [`trace_enable`] and exports the journal
//! with [`perfetto`] or [`ndjson`].
//!
//! # Examples
//!
//! ```
//! use yac_obs::{Metric, Phase, Registry};
//!
//! let reg = Registry::new();
//! reg.enable();
//! {
//!     let _sample = reg.phase(Phase::Sample);
//!     reg.add(Metric::DiesSampled, 100);
//! }
//! assert_eq!(reg.counter(Metric::DiesSampled), 100);
//! assert_eq!(reg.phase_calls(Phase::Sample), 1);
//! assert!(reg.phase_nanos(Phase::Sample) > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod manifest;
pub mod ndjson;
pub mod perfetto;
pub mod progress;
pub mod registry;
pub mod trace;

pub use manifest::{extract_metric, peak_rss_bytes, ManifestMetric, PhaseReport, RunManifest};
pub use registry::{Histogram, Metric, Phase, PhaseGuard, Registry, Snapshot};
pub use trace::{Journal, TraceCtx, TraceEvent, TraceEventKind, TraceSnapshot};

use std::sync::OnceLock;

/// The process-global registry every instrumented crate reports into.
#[must_use]
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Turns global metrics collection on.
pub fn enable() {
    global().enable();
}

/// Turns global metrics collection off (hooks return immediately again).
pub fn disable() {
    global().disable();
}

/// Whether the global registry is currently collecting.
#[must_use]
pub fn enabled() -> bool {
    global().is_enabled()
}

/// Increments a global counter by one. No-op while disabled.
#[inline]
pub fn inc(metric: Metric) {
    global().inc(metric);
}

/// Adds `n` to a global counter. No-op while disabled.
#[inline]
pub fn add(metric: Metric, n: u64) {
    global().add(metric, n);
}

/// The process-global event journal every instrumented crate traces
/// into. Disabled (and costing one atomic load per hook) until
/// [`trace_enable`].
#[must_use]
pub fn journal() -> &'static Journal {
    static GLOBAL: OnceLock<Journal> = OnceLock::new();
    GLOBAL.get_or_init(Journal::new)
}

/// Turns global event tracing on.
pub fn trace_enable() {
    journal().enable();
}

/// Turns global event tracing off (recorded events are kept).
pub fn trace_disable() {
    journal().disable();
}

/// Whether the global journal is currently recording.
#[must_use]
pub fn trace_enabled() -> bool {
    journal().is_enabled()
}

/// Records an instant event in the global journal. No-op while tracing
/// is disabled.
#[inline]
pub fn trace_instant(kind: TraceEventKind, ctx: TraceCtx) {
    journal().record_instant(kind, ctx);
}

/// Nanoseconds since the global journal's epoch — pair with
/// [`trace_span_at`] to record a span measured across scopes.
#[must_use]
pub fn trace_now_ns() -> u64 {
    journal().now_ns()
}

/// Records a span that started at `start_ns` (from [`trace_now_ns`])
/// and ends now. No-op while tracing is disabled.
#[inline]
pub fn trace_span_at(kind: TraceEventKind, ctx: TraceCtx, start_ns: u64) {
    journal().record_span(kind, ctx, start_ns);
}

/// Names the calling thread's track in trace exports (first call wins).
pub fn trace_label_thread(label: &str) {
    journal().label_thread(label);
}

/// Scoped timer returned by [`phase`] / [`phase_ctx`]: attributes its
/// lifetime to `phase` in the global registry and — when tracing is on —
/// records a matching `PhaseSpan` event (with `ctx`) in the global
/// journal. Inert (no clock read) while both layers are disabled.
#[derive(Debug)]
#[must_use = "a span records time when dropped; binding it to _ drops it immediately"]
pub struct Span {
    phase: Phase,
    ctx: TraceCtx,
    /// `Some(start)` iff tracing was enabled when the span opened.
    trace_start: Option<u64>,
    /// Dropped after the trace event is recorded (field order).
    _guard: PhaseGuard<'static>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.trace_start {
            journal().record_span(TraceEventKind::PhaseSpan(self.phase), self.ctx, start);
        }
    }
}

/// Starts a scoped timer attributing its lifetime to `phase` in the
/// global registry (and the global journal, when tracing is on).
#[inline]
pub fn phase(phase: Phase) -> Span {
    phase_ctx(phase, TraceCtx::default())
}

/// [`phase`] with structured context (chip index, shard id, ...)
/// attached to the traced span.
#[inline]
pub fn phase_ctx(phase: Phase, ctx: TraceCtx) -> Span {
    let trace_start = trace_enabled().then(|| journal().now_ns());
    Span {
        phase,
        ctx,
        trace_start,
        _guard: global().phase(phase),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_is_disabled_by_default_and_hooks_are_noops() {
        // Other tests in this binary may enable the global registry; this
        // one only asserts the no-op contract of a disabled registry via a
        // private instance.
        let reg = Registry::new();
        assert!(!reg.is_enabled());
        reg.inc(Metric::DiesSampled);
        {
            let _g = reg.phase(Phase::Sample);
        }
        assert_eq!(reg.counter(Metric::DiesSampled), 0);
        assert_eq!(reg.phase_calls(Phase::Sample), 0);
        assert_eq!(reg.phase_nanos(Phase::Sample), 0);
    }

    #[test]
    fn global_registry_and_journal_are_singletons() {
        assert!(std::ptr::eq(global(), global()));
        assert!(std::ptr::eq(journal(), journal()));
    }

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Registry>();
        assert_send_sync::<Snapshot>();
        assert_send_sync::<RunManifest>();
        assert_send_sync::<Journal>();
        assert_send_sync::<TraceSnapshot>();
        assert_send_sync::<progress::ProgressReporter>();
    }

    #[test]
    fn span_records_into_registry_without_tracing() {
        // The global journal stays untouched here (other tests in this
        // binary may own it); a disabled journal means the span carries
        // no trace_start and only the registry side records.
        let span = phase_ctx(Phase::Report, TraceCtx::chip(1));
        assert!(span.trace_start.is_none() || trace_enabled());
        drop(span);
    }
}
