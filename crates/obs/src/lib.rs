//! Observability for the yield-study pipeline: a lock-free metrics
//! registry (counters, phase timers, latency histograms) and a
//! machine-readable run manifest.
//!
//! The whole layer is **zero-cost when disabled**: every hook is guarded
//! by one relaxed atomic load, takes no lock and performs no allocation,
//! and enabling it never changes any simulation result — metrics are
//! strictly observational. The hot paths of every other crate
//! (`yac_variation` sampling, `yac_circuit` evaluation, `yac_core`
//! classification, scheme rescue and the supervised shard executor, the
//! `yac_pipeline` simulator) call
//! the free functions in this crate against the process-global
//! [`Registry`]; a study driver that wants numbers calls [`enable`],
//! runs, and snapshots a [`RunManifest`].
//!
//! # Examples
//!
//! ```
//! use yac_obs::{Metric, Phase, Registry};
//!
//! let reg = Registry::new();
//! reg.enable();
//! {
//!     let _sample = reg.phase(Phase::Sample);
//!     reg.add(Metric::DiesSampled, 100);
//! }
//! assert_eq!(reg.counter(Metric::DiesSampled), 100);
//! assert_eq!(reg.phase_calls(Phase::Sample), 1);
//! assert!(reg.phase_nanos(Phase::Sample) > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod manifest;
pub mod registry;

pub use manifest::{extract_metric, peak_rss_bytes, ManifestMetric, PhaseReport, RunManifest};
pub use registry::{Histogram, Metric, Phase, PhaseGuard, Registry, Snapshot};

use std::sync::OnceLock;

/// The process-global registry every instrumented crate reports into.
#[must_use]
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Turns global metrics collection on.
pub fn enable() {
    global().enable();
}

/// Turns global metrics collection off (hooks return immediately again).
pub fn disable() {
    global().disable();
}

/// Whether the global registry is currently collecting.
#[must_use]
pub fn enabled() -> bool {
    global().is_enabled()
}

/// Increments a global counter by one. No-op while disabled.
#[inline]
pub fn inc(metric: Metric) {
    global().inc(metric);
}

/// Adds `n` to a global counter. No-op while disabled.
#[inline]
pub fn add(metric: Metric, n: u64) {
    global().add(metric, n);
}

/// Starts a scoped timer attributing its lifetime to `phase` in the
/// global registry. The guard is inert (no clock read) while disabled.
#[inline]
pub fn phase(phase: Phase) -> PhaseGuard<'static> {
    global().phase(phase)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_is_disabled_by_default_and_hooks_are_noops() {
        // Other tests in this binary may enable the global registry; this
        // one only asserts the no-op contract of a disabled registry via a
        // private instance.
        let reg = Registry::new();
        assert!(!reg.is_enabled());
        reg.inc(Metric::DiesSampled);
        {
            let _g = reg.phase(Phase::Sample);
        }
        assert_eq!(reg.counter(Metric::DiesSampled), 0);
        assert_eq!(reg.phase_calls(Phase::Sample), 0);
        assert_eq!(reg.phase_nanos(Phase::Sample), 0);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        assert!(std::ptr::eq(global(), global()));
    }

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Registry>();
        assert_send_sync::<Snapshot>();
        assert_send_sync::<RunManifest>();
    }
}
