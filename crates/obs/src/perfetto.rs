//! Chrome trace-event JSON exporter for [`crate::trace`] snapshots —
//! loadable directly in [Perfetto](https://ui.perfetto.dev) or
//! `chrome://tracing`, dependency-free like the manifest writer.
//!
//! The export uses the trace-event JSON-array format: one `"X"`
//! (complete) event per span, one `"i"` (instant) event per instant, and
//! `"M"` (metadata) events naming the process and one track per recorded
//! thread (`tid` = the thread's journal slot, so worker tracks line up
//! run to run). Context fields land in each event's `args`, so clicking
//! a shard span in Perfetto shows its shard id, attempt generation and
//! worker index.
//!
//! # Examples
//!
//! ```
//! use yac_obs::trace::{Journal, TraceCtx, TraceEventKind};
//!
//! let journal = Journal::new();
//! journal.enable();
//! journal.record_instant(TraceEventKind::ShardCompleted, TraceCtx::shard(0, 3, 1));
//! let json = yac_obs::perfetto::to_chrome_json(&journal.snapshot());
//! assert!(json.contains("\"ShardCompleted\""));
//! ```

use crate::trace::{TraceEvent, TraceEventKind, TraceSnapshot};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Renders a snapshot as Chrome trace-event JSON (`traceEvents` array
/// plus a `displayTimeUnit` hint). Timestamps are microseconds since the
/// journal epoch, as the format requires.
#[must_use]
pub fn to_chrome_json(snapshot: &TraceSnapshot) -> String {
    let mut out = String::with_capacity(256 + snapshot.total_events() * 128);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"yac\"}}",
    );
    for thread in &snapshot.threads {
        let _ = write!(
            out,
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
             \"args\":{{\"name\":{}}}}}",
            thread.slot,
            json_escape(&thread.label)
        );
    }
    for thread in &snapshot.threads {
        for event in &thread.events {
            out.push_str(",\n");
            write_event(&mut out, thread.slot, event);
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Writes [`to_chrome_json`] output to `path`.
///
/// # Errors
///
/// Propagates the underlying file-system error.
pub fn write_chrome_json(path: &Path, snapshot: &TraceSnapshot) -> io::Result<()> {
    std::fs::write(path, to_chrome_json(snapshot))
}

fn write_event(out: &mut String, tid: usize, event: &TraceEvent) {
    let name = match event.kind {
        TraceEventKind::PhaseSpan(phase) => phase.name(),
        kind => kind.name(),
    };
    let cat = match event.kind {
        TraceEventKind::PhaseSpan(_) => "phase",
        TraceEventKind::RescueAttempt => "rescue",
        TraceEventKind::CheckpointWritten => "checkpoint",
        TraceEventKind::StudyStarted
        | TraceEventKind::StudyCompleted
        | TraceEventKind::StudyDegraded
        | TraceEventKind::SweepResumed => "sweep",
        TraceEventKind::ConnRejected
        | TraceEventKind::SlowClientEvicted
        | TraceEventKind::RetryAttempted
        | TraceEventKind::BreakerOpened
        | TraceEventKind::BreakerHalfOpen => "net",
        _ => "shard",
    };
    // ts/dur are float microseconds; nanosecond precision survives.
    let ts = event.t_ns as f64 / 1e3;
    let _ = write!(
        out,
        "{{\"name\":{},\"cat\":\"{cat}\",\"pid\":1,\"tid\":{tid},\"ts\":{ts:.3}",
        json_escape(name)
    );
    if event.dur_ns > 0 {
        let _ = write!(
            out,
            ",\"ph\":\"X\",\"dur\":{:.3}",
            event.dur_ns as f64 / 1e3
        );
    } else {
        // Thread-scoped instant: renders as a marker on this track.
        out.push_str(",\"ph\":\"i\",\"s\":\"t\"");
    }
    out.push_str(",\"args\":{");
    let mut first = true;
    let mut arg = |key: &str, value: u64| {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\"{key}\":{value}");
    };
    if let Some(w) = event.ctx.worker {
        arg("worker", u64::from(w));
    }
    if let Some(s) = event.ctx.shard {
        arg("shard", u64::from(s));
    }
    if let Some(a) = event.ctx.attempt {
        arg("attempt", u64::from(a));
    }
    if let Some(c) = event.ctx.chip {
        arg("chip", c);
    }
    if let Some(s) = event.ctx.scheme {
        arg("scheme", u64::from(s));
    }
    if let Some(s) = event.ctx.study {
        arg("study", u64::from(s));
    }
    out.push_str("}}");
}

/// Escapes a string as a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Phase;
    use crate::trace::{Journal, TraceCtx};

    #[test]
    fn export_contains_track_metadata_and_both_event_shapes() {
        let j = Journal::new();
        j.enable();
        j.label_thread("worker-0");
        j.record_at(
            TraceEventKind::PhaseSpan(Phase::ShardExec),
            TraceCtx::shard(0, 2, 1),
            1_000,
            5_000,
        );
        j.record_at(
            TraceEventKind::ShardRetried,
            TraceCtx::shard(0, 2, 1),
            9_000,
            0,
        );
        let json = to_chrome_json(&j.snapshot());
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"worker-0\""));
        // The span: complete event with duration, phase name as the label.
        assert!(json.contains("\"name\":\"shard_exec\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":5.000"));
        // The instant.
        assert!(json.contains("\"name\":\"ShardRetried\""));
        assert!(json.contains("\"ph\":\"i\""));
        // Context fields surface as args.
        assert!(json.contains("\"shard\":2"));
        assert!(json.contains("\"attempt\":1"));
    }

    #[test]
    fn empty_snapshot_is_still_valid_trace_json() {
        let json = to_chrome_json(&Journal::new().snapshot());
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
    }
}
