//! The structured event journal: a lock-free, per-thread ring buffer of
//! timestamped spans and instants with structured context (worker,
//! shard, attempt, chip, scheme).
//!
//! Where the [`crate::registry`] answers *"how much, how long in
//! aggregate"*, the journal answers *"what happened, when, on which
//! shard"* — the question a supervised run raises the moment shards
//! retry, time out or degrade. The same contract as the registry holds:
//!
//! * **Zero-cost when disabled** — recording is one relaxed atomic load
//!   and a branch.
//! * **Allocation-free on the hot path** — each thread's ring buffer is
//!   allocated once, on that thread's first recorded event; recording
//!   into it is plain atomic stores.
//! * **Lock-free** — writers never block each other or readers. A
//!   snapshot taken while writers are live simply skips events it
//!   catches mid-overwrite (a per-event sequence word makes torn reads
//!   detectable).
//! * **Observation only** — nothing feeds back into simulation state, so
//!   enabling tracing never changes a study's results.
//!
//! The journal is **fixed-capacity**: each thread keeps its most recent
//! `capacity` events and silently overwrites older ones — a crashed or
//! slow run keeps the tail of its history, which is the part that
//! explains the crash. Threads beyond [`MAX_TRACE_THREADS`] drop their
//! events into [`Journal::dropped_events`] instead of recording.
//!
//! Export a snapshot with [`crate::perfetto`] (Chrome trace-event JSON,
//! loadable in Perfetto / `chrome://tracing`) or [`crate::ndjson`]
//! (append-only `yac-trace/1` event log).
//!
//! # Examples
//!
//! ```
//! use yac_obs::trace::{Journal, TraceCtx, TraceEventKind};
//!
//! let journal = Journal::new();
//! journal.enable();
//! journal.record_instant(TraceEventKind::ShardCompleted, TraceCtx::shard(0, 3, 1));
//! let snap = journal.snapshot();
//! assert_eq!(snap.total_events(), 1);
//! assert_eq!(snap.threads[0].events[0].ctx.shard, Some(3));
//! ```

use crate::registry::Phase;
use std::cell::Cell;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Maximum number of distinct threads a journal can track. Threads
/// beyond this drop their events (counted, never blocking).
pub const MAX_TRACE_THREADS: usize = 128;

/// Default per-thread ring capacity, in events (~448 KiB per thread at
/// seven words per event).
pub const DEFAULT_TRACE_CAPACITY: usize = 8192;

/// Words per encoded event: sequence, start, duration, packed kind and
/// context.
const WORDS: usize = 7;

/// Sentinel byte for "not a phase span" in the packed kind word.
const NO_PHASE: u8 = u8::MAX;

/// What a [`TraceEvent`] records. Spans carry a nonzero duration;
/// instants have `dur_ns == 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceEventKind {
    /// A scoped [`Phase`] timer (sample, circuit eval, classify, rescue,
    /// pipeline sim, report, shard exec) recorded as a span.
    PhaseSpan(Phase),
    /// A supervised-executor worker picked a shard off the queue.
    ShardDispatched,
    /// A shard attempt ran to completion and its result was returned.
    ShardCompleted,
    /// A shard attempt failed and was re-queued after backoff.
    ShardRetried,
    /// A shard attempt was cancelled by its deadline.
    ShardTimedOut,
    /// A shard exhausted its retry budget and was recorded degraded.
    ShardDegraded,
    /// One scheme tried to rescue one failing chip.
    RescueAttempt,
    /// A study checkpoint was durably written.
    CheckpointWritten,
    /// A sweep orchestrator started (or resumed) one grid study.
    StudyStarted,
    /// A grid study ran to completion with every chip observed.
    StudyCompleted,
    /// A grid study finished degraded (missing chips) or failed outright.
    StudyDegraded,
    /// A sweep picked up an existing journal and skipped finished work.
    SweepResumed,
    /// The sweep service received a study query.
    QueryReceived,
    /// The sweep service answered a study query with a result.
    QueryServed,
    /// A study query was answered from the content-addressed result cache.
    CacheHit,
    /// A study query missed the result cache and forced a compute.
    CacheMiss,
    /// A work-stealing worker stole tasks from another worker's deque.
    TaskStolen,
    /// The serve loop refused a connection over the connection cap.
    ConnRejected,
    /// A connection was evicted for blowing a per-frame read/write
    /// deadline (slowloris defence).
    SlowClientEvicted,
    /// The resilient client retried a request after a transient failure
    /// or a typed `Busy` reply.
    RetryAttempted,
    /// The client's circuit breaker tripped from closed (or half-open)
    /// to open.
    BreakerOpened,
    /// The client's circuit breaker moved from open to half-open to
    /// probe the server.
    BreakerHalfOpen,
    /// The background scrubber finished one verify pass over the result
    /// cache.
    ScrubPass,
    /// A cache entry failed its CRC re-check and was quarantined (it
    /// will be served as a miss until recomputed).
    EntryQuarantined,
    /// A quarantined cache entry was overwritten by a fresh, verified
    /// recompute.
    EntryRepaired,
    /// A busy lane published no heartbeat tick within the stall budget;
    /// the sentinel escalated (cooperative cancel).
    HeartbeatMissed,
    /// The sentinel abandoned a stalled shard attempt and resubmitted
    /// the shard to a fresh worker.
    ShardReassigned,
    /// A worker pool lost threads to panics and was rebuilt in place.
    PoolRestarted,
}

impl TraceEventKind {
    /// Every kind, with `PhaseSpan` represented once (by `Sample`).
    /// Useful for exhaustive schema tests.
    pub const ALL: [TraceEventKind; 28] = [
        TraceEventKind::PhaseSpan(Phase::Sample),
        TraceEventKind::ShardDispatched,
        TraceEventKind::ShardCompleted,
        TraceEventKind::ShardRetried,
        TraceEventKind::ShardTimedOut,
        TraceEventKind::ShardDegraded,
        TraceEventKind::RescueAttempt,
        TraceEventKind::CheckpointWritten,
        TraceEventKind::StudyStarted,
        TraceEventKind::StudyCompleted,
        TraceEventKind::StudyDegraded,
        TraceEventKind::SweepResumed,
        TraceEventKind::QueryReceived,
        TraceEventKind::QueryServed,
        TraceEventKind::CacheHit,
        TraceEventKind::CacheMiss,
        TraceEventKind::TaskStolen,
        TraceEventKind::ConnRejected,
        TraceEventKind::SlowClientEvicted,
        TraceEventKind::RetryAttempted,
        TraceEventKind::BreakerOpened,
        TraceEventKind::BreakerHalfOpen,
        TraceEventKind::ScrubPass,
        TraceEventKind::EntryQuarantined,
        TraceEventKind::EntryRepaired,
        TraceEventKind::HeartbeatMissed,
        TraceEventKind::ShardReassigned,
        TraceEventKind::PoolRestarted,
    ];

    /// The stable CamelCase name used in the NDJSON schema.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TraceEventKind::PhaseSpan(_) => "PhaseSpan",
            TraceEventKind::ShardDispatched => "ShardDispatched",
            TraceEventKind::ShardCompleted => "ShardCompleted",
            TraceEventKind::ShardRetried => "ShardRetried",
            TraceEventKind::ShardTimedOut => "ShardTimedOut",
            TraceEventKind::ShardDegraded => "ShardDegraded",
            TraceEventKind::RescueAttempt => "RescueAttempt",
            TraceEventKind::CheckpointWritten => "CheckpointWritten",
            TraceEventKind::StudyStarted => "StudyStarted",
            TraceEventKind::StudyCompleted => "StudyCompleted",
            TraceEventKind::StudyDegraded => "StudyDegraded",
            TraceEventKind::SweepResumed => "SweepResumed",
            TraceEventKind::QueryReceived => "QueryReceived",
            TraceEventKind::QueryServed => "QueryServed",
            TraceEventKind::CacheHit => "CacheHit",
            TraceEventKind::CacheMiss => "CacheMiss",
            TraceEventKind::TaskStolen => "TaskStolen",
            TraceEventKind::ConnRejected => "ConnRejected",
            TraceEventKind::SlowClientEvicted => "SlowClientEvicted",
            TraceEventKind::RetryAttempted => "RetryAttempted",
            TraceEventKind::BreakerOpened => "BreakerOpened",
            TraceEventKind::BreakerHalfOpen => "BreakerHalfOpen",
            TraceEventKind::ScrubPass => "ScrubPass",
            TraceEventKind::EntryQuarantined => "EntryQuarantined",
            TraceEventKind::EntryRepaired => "EntryRepaired",
            TraceEventKind::HeartbeatMissed => "HeartbeatMissed",
            TraceEventKind::ShardReassigned => "ShardReassigned",
            TraceEventKind::PoolRestarted => "PoolRestarted",
        }
    }

    /// Parses [`TraceEventKind::name`] back; `phase` supplies the phase
    /// for `"PhaseSpan"` lines.
    #[must_use]
    pub fn from_name(name: &str, phase: Option<Phase>) -> Option<TraceEventKind> {
        Some(match name {
            "PhaseSpan" => TraceEventKind::PhaseSpan(phase?),
            "ShardDispatched" => TraceEventKind::ShardDispatched,
            "ShardCompleted" => TraceEventKind::ShardCompleted,
            "ShardRetried" => TraceEventKind::ShardRetried,
            "ShardTimedOut" => TraceEventKind::ShardTimedOut,
            "ShardDegraded" => TraceEventKind::ShardDegraded,
            "RescueAttempt" => TraceEventKind::RescueAttempt,
            "CheckpointWritten" => TraceEventKind::CheckpointWritten,
            "StudyStarted" => TraceEventKind::StudyStarted,
            "StudyCompleted" => TraceEventKind::StudyCompleted,
            "StudyDegraded" => TraceEventKind::StudyDegraded,
            "SweepResumed" => TraceEventKind::SweepResumed,
            "QueryReceived" => TraceEventKind::QueryReceived,
            "QueryServed" => TraceEventKind::QueryServed,
            "CacheHit" => TraceEventKind::CacheHit,
            "CacheMiss" => TraceEventKind::CacheMiss,
            "TaskStolen" => TraceEventKind::TaskStolen,
            "ConnRejected" => TraceEventKind::ConnRejected,
            "SlowClientEvicted" => TraceEventKind::SlowClientEvicted,
            "RetryAttempted" => TraceEventKind::RetryAttempted,
            "BreakerOpened" => TraceEventKind::BreakerOpened,
            "BreakerHalfOpen" => TraceEventKind::BreakerHalfOpen,
            "ScrubPass" => TraceEventKind::ScrubPass,
            "EntryQuarantined" => TraceEventKind::EntryQuarantined,
            "EntryRepaired" => TraceEventKind::EntryRepaired,
            "HeartbeatMissed" => TraceEventKind::HeartbeatMissed,
            "ShardReassigned" => TraceEventKind::ShardReassigned,
            "PoolRestarted" => TraceEventKind::PoolRestarted,
            _ => return None,
        })
    }

    fn code(self) -> u8 {
        match self {
            TraceEventKind::PhaseSpan(_) => 1,
            TraceEventKind::ShardDispatched => 2,
            TraceEventKind::ShardCompleted => 3,
            TraceEventKind::ShardRetried => 4,
            TraceEventKind::ShardTimedOut => 5,
            TraceEventKind::ShardDegraded => 6,
            TraceEventKind::RescueAttempt => 7,
            TraceEventKind::CheckpointWritten => 8,
            TraceEventKind::StudyStarted => 9,
            TraceEventKind::StudyCompleted => 10,
            TraceEventKind::StudyDegraded => 11,
            TraceEventKind::SweepResumed => 12,
            TraceEventKind::QueryReceived => 13,
            TraceEventKind::QueryServed => 14,
            TraceEventKind::CacheHit => 15,
            TraceEventKind::CacheMiss => 16,
            TraceEventKind::TaskStolen => 17,
            TraceEventKind::ConnRejected => 18,
            TraceEventKind::SlowClientEvicted => 19,
            TraceEventKind::RetryAttempted => 20,
            TraceEventKind::BreakerOpened => 21,
            TraceEventKind::BreakerHalfOpen => 22,
            TraceEventKind::ScrubPass => 23,
            TraceEventKind::EntryQuarantined => 24,
            TraceEventKind::EntryRepaired => 25,
            TraceEventKind::HeartbeatMissed => 26,
            TraceEventKind::ShardReassigned => 27,
            TraceEventKind::PoolRestarted => 28,
        }
    }

    fn phase_byte(self) -> u8 {
        match self {
            TraceEventKind::PhaseSpan(p) => p as usize as u8,
            _ => NO_PHASE,
        }
    }

    fn decode(code: u8, phase: u8) -> Option<TraceEventKind> {
        Some(match code {
            1 => TraceEventKind::PhaseSpan(Phase::from_index(phase as usize)?),
            2 => TraceEventKind::ShardDispatched,
            3 => TraceEventKind::ShardCompleted,
            4 => TraceEventKind::ShardRetried,
            5 => TraceEventKind::ShardTimedOut,
            6 => TraceEventKind::ShardDegraded,
            7 => TraceEventKind::RescueAttempt,
            8 => TraceEventKind::CheckpointWritten,
            9 => TraceEventKind::StudyStarted,
            10 => TraceEventKind::StudyCompleted,
            11 => TraceEventKind::StudyDegraded,
            12 => TraceEventKind::SweepResumed,
            13 => TraceEventKind::QueryReceived,
            14 => TraceEventKind::QueryServed,
            15 => TraceEventKind::CacheHit,
            16 => TraceEventKind::CacheMiss,
            17 => TraceEventKind::TaskStolen,
            18 => TraceEventKind::ConnRejected,
            19 => TraceEventKind::SlowClientEvicted,
            20 => TraceEventKind::RetryAttempted,
            21 => TraceEventKind::BreakerOpened,
            22 => TraceEventKind::BreakerHalfOpen,
            23 => TraceEventKind::ScrubPass,
            24 => TraceEventKind::EntryQuarantined,
            25 => TraceEventKind::EntryRepaired,
            26 => TraceEventKind::HeartbeatMissed,
            27 => TraceEventKind::ShardReassigned,
            28 => TraceEventKind::PoolRestarted,
            _ => return None,
        })
    }
}

/// Structured context attached to an event. Absent fields are omitted
/// from exports. (The in-ring encoding reserves the all-ones value of
/// each field as "absent", so a worker index of `u32::MAX`, a chip index
/// of `u64::MAX` etc. cannot be represented — indices that large do not
/// occur in practice.)
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceCtx {
    /// Supervised-executor worker index.
    pub worker: Option<u32>,
    /// Shard index within the study's shard list.
    pub shard: Option<u32>,
    /// Attempt generation of the shard (0 = first attempt).
    pub attempt: Option<u32>,
    /// Chip (Monte Carlo stream) index.
    pub chip: Option<u64>,
    /// Scheme column index (position in the loss table's scheme list).
    pub scheme: Option<u16>,
    /// Study index within a sweep grid.
    pub study: Option<u32>,
}

impl TraceCtx {
    /// Context for a per-chip event.
    #[must_use]
    pub fn chip(index: u64) -> Self {
        TraceCtx {
            chip: Some(index),
            ..TraceCtx::default()
        }
    }

    /// Context for a shard-lifecycle event.
    #[must_use]
    pub fn shard(worker: u32, shard: u32, attempt: u32) -> Self {
        TraceCtx {
            worker: Some(worker),
            shard: Some(shard),
            attempt: Some(attempt),
            ..TraceCtx::default()
        }
    }

    /// Adds a scheme column index.
    #[must_use]
    pub fn with_scheme(mut self, scheme: u16) -> Self {
        self.scheme = Some(scheme);
        self
    }

    /// Context for a sweep-level study event.
    #[must_use]
    pub fn study(index: u32) -> Self {
        TraceCtx {
            study: Some(index),
            ..TraceCtx::default()
        }
    }
}

/// One recorded span or instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceEvent {
    /// Start time, nanoseconds since the journal epoch.
    pub t_ns: u64,
    /// Duration in nanoseconds; 0 for instants.
    pub dur_ns: u64,
    /// What happened.
    pub kind: TraceEventKind,
    /// Structured context fields.
    pub ctx: TraceCtx,
}

impl TraceEvent {
    /// Encodes into the ring's payload words (everything but the
    /// sequence word).
    fn encode(&self) -> [u64; WORDS - 1] {
        let packed_kind = u64::from(self.kind.code())
            | (u64::from(self.kind.phase_byte()) << 8)
            | (u64::from(self.ctx.scheme.unwrap_or(u16::MAX)) << 16)
            | (u64::from(self.ctx.worker.unwrap_or(u32::MAX)) << 32);
        let packed_shard = u64::from(self.ctx.shard.unwrap_or(u32::MAX))
            | (u64::from(self.ctx.attempt.unwrap_or(u32::MAX)) << 32);
        [
            self.t_ns,
            self.dur_ns,
            packed_kind,
            packed_shard,
            self.ctx.chip.unwrap_or(u64::MAX),
            u64::from(self.ctx.study.unwrap_or(u32::MAX)),
        ]
    }

    /// Decodes the payload words; `None` for an unknown kind code (a
    /// torn or corrupt cell).
    fn decode(words: [u64; WORDS - 1]) -> Option<TraceEvent> {
        let [t_ns, dur_ns, packed_kind, packed_shard, chip, study] = words;
        let kind = TraceEventKind::decode(packed_kind as u8, (packed_kind >> 8) as u8)?;
        let unpack_u32 = |v: u32| (v != u32::MAX).then_some(v);
        Some(TraceEvent {
            t_ns,
            dur_ns,
            kind,
            ctx: TraceCtx {
                worker: unpack_u32((packed_kind >> 32) as u32),
                shard: unpack_u32(packed_shard as u32),
                attempt: unpack_u32((packed_shard >> 32) as u32),
                chip: (chip != u64::MAX).then_some(chip),
                scheme: {
                    let s = (packed_kind >> 16) as u16;
                    (s != u16::MAX).then_some(s)
                },
                study: unpack_u32(study as u32),
            },
        })
    }
}

/// One thread's ring. The owning thread writes with `head.fetch_add`
/// plus a per-event sequence word (a miniature seqlock), so a snapshot
/// taken concurrently can detect and skip cells mid-overwrite without
/// any lock.
#[derive(Debug)]
struct ThreadSlot {
    /// Hashed `ThreadId` of the owner; 0 = unclaimed. (Two threads whose
    /// id hashes collide share a slot — writes stay safe because `head`
    /// is fetch-add allocated; their tracks merely merge.)
    owner: AtomicU64,
    /// Events ever started on this slot (not clamped to capacity).
    head: AtomicU64,
    /// `capacity * WORDS` atomics, allocated on the owner's first event.
    words: OnceLock<Box<[AtomicU64]>>,
    /// Display label for exports ("worker-3", a benchmark name, ...).
    label: OnceLock<String>,
}

impl ThreadSlot {
    fn new() -> Self {
        ThreadSlot {
            owner: AtomicU64::new(0),
            head: AtomicU64::new(0),
            words: OnceLock::new(),
            label: OnceLock::new(),
        }
    }
}

/// All events one thread contributed to a [`TraceSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadTrace {
    /// The thread's slot index (stable for the journal's lifetime; used
    /// as the `tid` in Perfetto exports).
    pub slot: usize,
    /// Display label (defaults to `thread-<slot>`).
    pub label: String,
    /// Events in recording order (oldest surviving first).
    pub events: Vec<TraceEvent>,
    /// Events this thread overwrote (ring wrap) or that were skipped as
    /// torn during a concurrent snapshot.
    pub lost: u64,
}

/// A point-in-time copy of every thread's surviving events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSnapshot {
    /// Per-thread traces, ascending by slot; threads that never recorded
    /// are absent.
    pub threads: Vec<ThreadTrace>,
    /// Events dropped because more than [`MAX_TRACE_THREADS`] threads
    /// recorded.
    pub dropped_events: u64,
}

impl TraceSnapshot {
    /// Total events across all threads.
    #[must_use]
    pub fn total_events(&self) -> usize {
        self.threads.iter().map(|t| t.events.len()).sum()
    }

    /// Whether no thread recorded anything.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total_events() == 0
    }
}

/// The journal: [`MAX_TRACE_THREADS`] independent per-thread rings
/// behind one enable flag and one epoch.
#[derive(Debug)]
pub struct Journal {
    enabled: AtomicBool,
    epoch: OnceLock<Instant>,
    /// Per-thread ring capacity in events, read when a thread allocates
    /// its ring (so it must be set before recording starts).
    capacity: AtomicUsize,
    slots: Box<[ThreadSlot]>,
    dropped: AtomicU64,
}

impl Default for Journal {
    fn default() -> Self {
        Journal::new()
    }
}

thread_local! {
    /// Cache of `(journal address, slot index)` for the calling thread,
    /// so the common case skips the claim probe entirely.
    static SLOT_CACHE: Cell<(usize, usize)> = const { Cell::new((0, 0)) };
}

impl Journal {
    /// A fresh, disabled journal with the default per-thread capacity.
    #[must_use]
    pub fn new() -> Self {
        Journal {
            enabled: AtomicBool::new(false),
            epoch: OnceLock::new(),
            capacity: AtomicUsize::new(DEFAULT_TRACE_CAPACITY),
            slots: (0..MAX_TRACE_THREADS).map(|_| ThreadSlot::new()).collect(),
            dropped: AtomicU64::new(0),
        }
    }

    /// Starts recording (and pins the epoch on first call).
    pub fn enable(&self) {
        self.epoch.get_or_init(Instant::now);
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Stops recording (already-recorded events are kept).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether recording hooks currently record.
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Sets the per-thread ring capacity (events, clamped to ≥ 16).
    /// Affects only threads that have not recorded yet — a thread's ring
    /// is sized once, at its first event.
    pub fn set_capacity(&self, events: usize) {
        self.capacity.store(events.max(16), Ordering::Relaxed);
    }

    /// Nanoseconds since the journal epoch (pinned on first use).
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        let epoch = self.epoch.get_or_init(Instant::now);
        u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Events dropped because more than [`MAX_TRACE_THREADS`] threads
    /// tried to record.
    #[must_use]
    pub fn dropped_events(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Records an instant event stamped "now". No-op while disabled.
    #[inline]
    pub fn record_instant(&self, kind: TraceEventKind, ctx: TraceCtx) {
        if !self.is_enabled() {
            return;
        }
        self.write(TraceEvent {
            t_ns: self.now_ns(),
            dur_ns: 0,
            kind,
            ctx,
        });
    }

    /// Records a span that started at `start_ns` (from
    /// [`Journal::now_ns`]) and ends now. No-op while disabled.
    #[inline]
    pub fn record_span(&self, kind: TraceEventKind, ctx: TraceCtx, start_ns: u64) {
        if !self.is_enabled() {
            return;
        }
        self.write(TraceEvent {
            t_ns: start_ns,
            dur_ns: self.now_ns().saturating_sub(start_ns),
            kind,
            ctx,
        });
    }

    /// Records a fully-specified event. No-op while disabled.
    pub fn record_at(&self, kind: TraceEventKind, ctx: TraceCtx, t_ns: u64, dur_ns: u64) {
        if !self.is_enabled() {
            return;
        }
        self.write(TraceEvent {
            t_ns,
            dur_ns,
            kind,
            ctx,
        });
    }

    /// Sets the calling thread's display label for exports (first call
    /// wins). Claims the thread's slot even while disabled, so workers
    /// can label themselves before tracing is switched on.
    pub fn label_thread(&self, label: &str) {
        if let Some(slot) = self.thread_slot() {
            let _ = self.slots[slot].label.set(label.to_owned());
        }
    }

    /// The calling thread's slot, claiming one on first use.
    fn thread_slot(&self) -> Option<usize> {
        let key = std::ptr::from_ref(self) as usize;
        let (cached_key, cached_slot) = SLOT_CACHE.with(Cell::get);
        if cached_key == key {
            return Some(cached_slot);
        }
        let slot = self.claim_slot()?;
        SLOT_CACHE.with(|c| c.set((key, slot)));
        Some(slot)
    }

    /// Linear-probes the slot table for this thread's slot, claiming a
    /// free one if the thread is new. `None` when the table is full.
    fn claim_slot(&self) -> Option<usize> {
        let mut hasher = std::hash::DefaultHasher::new();
        std::thread::current().id().hash(&mut hasher);
        let me = hasher.finish() | 1;
        let start = (me as usize) % self.slots.len();
        for k in 0..self.slots.len() {
            let idx = (start + k) % self.slots.len();
            let owner = &self.slots[idx].owner;
            match owner.compare_exchange(0, me, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return Some(idx),
                Err(current) if current == me => return Some(idx),
                Err(_) => {}
            }
        }
        None
    }

    /// Writes one event into the calling thread's ring (the seqlock
    /// write protocol; see the reader in [`Journal::read_slot`]).
    fn write(&self, event: TraceEvent) {
        let Some(slot_idx) = self.thread_slot() else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let slot = &self.slots[slot_idx];
        let words = slot.words.get_or_init(|| {
            let cap = self.capacity.load(Ordering::Relaxed).max(16);
            (0..cap * WORDS).map(|_| AtomicU64::new(0)).collect()
        });
        let cap = words.len() / WORDS;
        let n = slot.head.fetch_add(1, Ordering::Relaxed);
        let base = (n as usize % cap) * WORDS;
        // Seqlock write: invalidate the cell, publish the payload, then
        // publish the sequence. The release fence keeps the invalidation
        // visible before any payload word; the release store keeps every
        // payload word visible before the new sequence.
        words[base].store(0, Ordering::Relaxed);
        fence(Ordering::Release);
        for (i, w) in event.encode().into_iter().enumerate() {
            words[base + 1 + i].store(w, Ordering::Relaxed);
        }
        words[base].store(n + 1, Ordering::Release);
    }

    /// Reads the surviving events of one slot; `lost` counts ring
    /// overwrites plus torn cells skipped during a concurrent snapshot.
    fn read_slot(&self, slot: &ThreadSlot) -> (Vec<TraceEvent>, u64) {
        let Some(words) = slot.words.get() else {
            return (Vec::new(), 0);
        };
        let cap = (words.len() / WORDS) as u64;
        let head = slot.head.load(Ordering::Acquire);
        let start = head.saturating_sub(cap);
        let mut events = Vec::with_capacity((head - start) as usize);
        let mut lost = start;
        for n in start..head {
            let base = (n % cap) as usize * WORDS;
            // Seqlock read: sequence before, payload, fence, sequence
            // after — both must equal this event's unique `n + 1`.
            let s1 = words[base].load(Ordering::Acquire);
            if s1 != n + 1 {
                lost += 1;
                continue;
            }
            let payload = std::array::from_fn(|i| words[base + 1 + i].load(Ordering::Relaxed));
            fence(Ordering::Acquire);
            let s2 = words[base].load(Ordering::Relaxed);
            match TraceEvent::decode(payload) {
                Some(event) if s2 == s1 => events.push(event),
                _ => lost += 1,
            }
        }
        (events, lost)
    }

    /// A point-in-time copy of every thread's events. Safe to call while
    /// writers are live: cells caught mid-overwrite are skipped (counted
    /// in [`ThreadTrace::lost`]), never torn.
    #[must_use]
    pub fn snapshot(&self) -> TraceSnapshot {
        let threads = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.owner.load(Ordering::Acquire) != 0)
            .filter_map(|(idx, slot)| {
                let (events, lost) = self.read_slot(slot);
                if events.is_empty() && lost == 0 {
                    return None;
                }
                Some(ThreadTrace {
                    slot: idx,
                    label: slot
                        .label
                        .get()
                        .cloned()
                        .unwrap_or_else(|| format!("thread-{idx}")),
                    events,
                    lost,
                })
            })
            .collect();
        TraceSnapshot {
            threads,
            dropped_events: self.dropped_events(),
        }
    }

    /// Discards every recorded event and the dropped-event count (the
    /// enabled flag and thread labels are kept). Call only while no
    /// writer is mid-record — a racing writer's event may be thrown away
    /// in part.
    pub fn clear(&self) {
        for slot in self.slots.iter() {
            if let Some(words) = slot.words.get() {
                for cell in (0..words.len()).step_by(WORDS) {
                    words[cell].store(0, Ordering::Relaxed);
                }
            }
            slot.head.store(0, Ordering::Relaxed);
        }
        self.dropped.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(t: u64, kind: TraceEventKind, ctx: TraceCtx) -> TraceEvent {
        TraceEvent {
            t_ns: t,
            dur_ns: 7,
            kind,
            ctx,
        }
    }

    #[test]
    fn every_kind_round_trips_through_the_ring_encoding() {
        let ctx = TraceCtx {
            worker: Some(3),
            shard: Some(17),
            attempt: Some(2),
            chip: Some(123_456),
            scheme: Some(1),
            study: Some(5),
        };
        for kind in TraceEventKind::ALL {
            let e = event(42, kind, ctx);
            assert_eq!(TraceEvent::decode(e.encode()), Some(e), "{}", kind.name());
        }
        for phase in Phase::ALL {
            let e = event(9, TraceEventKind::PhaseSpan(phase), TraceCtx::default());
            assert_eq!(TraceEvent::decode(e.encode()), Some(e));
        }
    }

    #[test]
    fn absent_ctx_fields_survive_encoding() {
        let e = event(1, TraceEventKind::ShardCompleted, TraceCtx::default());
        let decoded = TraceEvent::decode(e.encode()).unwrap();
        assert_eq!(decoded.ctx, TraceCtx::default());
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in TraceEventKind::ALL {
            let phase = match kind {
                TraceEventKind::PhaseSpan(p) => Some(p),
                _ => None,
            };
            assert_eq!(TraceEventKind::from_name(kind.name(), phase), Some(kind));
        }
        assert_eq!(TraceEventKind::from_name("Nonsense", None), None);
        assert_eq!(TraceEventKind::from_name("PhaseSpan", None), None);
    }

    #[test]
    fn disabled_journal_records_nothing() {
        let j = Journal::new();
        j.record_instant(TraceEventKind::ShardCompleted, TraceCtx::default());
        j.record_span(
            TraceEventKind::PhaseSpan(Phase::Sample),
            TraceCtx::default(),
            0,
        );
        assert!(j.snapshot().is_empty());
        assert_eq!(j.dropped_events(), 0);
    }

    #[test]
    fn ring_keeps_the_most_recent_capacity_events() {
        let j = Journal::new();
        j.set_capacity(16);
        j.enable();
        for i in 0..100u64 {
            j.record_at(TraceEventKind::ShardCompleted, TraceCtx::chip(i), i, 0);
        }
        let snap = j.snapshot();
        assert_eq!(snap.threads.len(), 1);
        let t = &snap.threads[0];
        assert_eq!(t.events.len(), 16, "ring holds exactly its capacity");
        assert_eq!(t.lost, 84, "the 84 oldest events were overwritten");
        let chips: Vec<u64> = t.events.iter().map(|e| e.ctx.chip.unwrap()).collect();
        assert_eq!(chips, (84..100).collect::<Vec<_>>());
    }

    #[test]
    fn clear_discards_events_and_reuses_the_ring() {
        let j = Journal::new();
        j.set_capacity(16);
        j.enable();
        for i in 0..10u64 {
            j.record_at(TraceEventKind::ShardRetried, TraceCtx::chip(i), i, 0);
        }
        j.clear();
        assert!(j.snapshot().is_empty());
        j.record_at(TraceEventKind::ShardRetried, TraceCtx::chip(7), 1, 0);
        let snap = j.snapshot();
        assert_eq!(snap.total_events(), 1);
        assert_eq!(snap.threads[0].events[0].ctx.chip, Some(7));
    }

    #[test]
    fn threads_get_distinct_slots_and_labels() {
        let j = Journal::new();
        j.enable();
        std::thread::scope(|s| {
            for i in 0..4u64 {
                let j = &j;
                s.spawn(move || {
                    j.label_thread(&format!("writer-{i}"));
                    for k in 0..5 {
                        j.record_at(TraceEventKind::ShardCompleted, TraceCtx::chip(i), k, 0);
                    }
                });
            }
        });
        let snap = j.snapshot();
        assert_eq!(snap.threads.len(), 4, "one track per thread");
        let mut labels: Vec<&str> = snap.threads.iter().map(|t| t.label.as_str()).collect();
        labels.sort_unstable();
        assert_eq!(labels, ["writer-0", "writer-1", "writer-2", "writer-3"]);
        for t in &snap.threads {
            assert_eq!(t.events.len(), 5);
            // All of one thread's events carry the same chip tag: no
            // cross-thread bleed.
            let first = t.events[0].ctx.chip;
            assert!(t.events.iter().all(|e| e.ctx.chip == first));
        }
    }

    #[test]
    fn concurrent_snapshot_never_yields_torn_events() {
        let j = Journal::new();
        j.set_capacity(32);
        j.enable();
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            for w in 0..2u64 {
                let (j, stop) = (&j, &stop);
                s.spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        // Every event of writer w carries t_ns == chip
                        // so a torn mix of two events is detectable.
                        j.record_at(
                            TraceEventKind::ShardCompleted,
                            TraceCtx::chip(w << 32 | i),
                            w << 32 | i,
                            0,
                        );
                        i += 1;
                    }
                });
            }
            for _ in 0..50 {
                for t in j.snapshot().threads {
                    for e in t.events {
                        assert_eq!(Some(e.t_ns), e.ctx.chip, "torn event surfaced");
                    }
                }
            }
            stop.store(true, Ordering::Relaxed);
        });
    }
}
