//! The structured run manifest: everything a benchmark run needs to be
//! comparable later, serialized to a stable, dependency-free JSON schema.
//!
//! Schema `yac-perf-report/2` (consumed by CI's `bench-smoke` gate and by
//! humans diffing `BENCH_*.json` files):
//!
//! ```json
//! {
//!   "schema": "yac-perf-report/2",
//!   "name": "perf_report",
//!   "run": { "seed": 2006, "chips": 200, "threads": 8,
//!            "quarantined": 0, "peak_rss_bytes": 123456 },
//!   "metrics": [ { "name": "total_wall_time", "value": 1.25, "unit": "s" },
//!                { "name": "chips_per_sec", "value": 160.1, "unit": "chips/s" } ],
//!   "phases":  [ { "name": "sample", "wall_time_s": 0.21, "cpu_time_s": 0.5,
//!                  "calls": 200, "mean_us": 2500.0, "p99_us": 4096.0,
//!                  "buckets": [[2097152, 180], [4194304, 20]] } ],
//!   "counters": [ { "name": "dies_sampled", "value": 200 } ]
//! }
//! ```
//!
//! Version 2 fixes v1's dishonest phase units: v1's single
//! `wall_time_s` / `phase_<x>_time` summed concurrent guard lifetimes
//! across threads, so a parallel phase could "take" 10.9 s inside a
//! 0.70 s run. v2 labels that summed figure `cpu_time_s` /
//! `phase_<x>_cpu_time` and adds a true wall-clock union
//! (`wall_time_s` / `phase_<x>_wall_time`: time during which ≥ 1 guard
//! of the phase was open, never more than elapsed real time). Each
//! phase also carries its raw log₂ `buckets` as `[le_ns, count]` pairs
//! so downstream tools can compute real quantiles instead of trusting
//! the factor-of-two `p99_us`.
//!
//! `metrics[].name` values are append-only: existing names never change
//! meaning, so a gate reading `chips_per_sec` keeps working across PRs.

use crate::registry::{Metric, Phase, Registry};
use std::fmt::Write as _;

/// One scalar measurement in the manifest's `metrics` array.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestMetric {
    /// Stable snake_case name (`total_wall_time`, `chips_per_sec`, ...).
    pub name: String,
    /// The measured value.
    pub value: f64,
    /// Unit string (`s`, `chips/s`, `uops/s`, ...).
    pub unit: String,
}

/// Per-phase timing block of the manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseReport {
    /// Phase name (see [`Phase::name`]).
    pub name: &'static str,
    /// Wall-clock seconds during which ≥ 1 guard of the phase was open
    /// (the union of guard intervals — bounded by elapsed real time).
    pub wall_time_s: f64,
    /// Accumulated guard time, seconds, summed over all guards — a
    /// phase whose guards run on parallel workers can exceed wall-clock
    /// time (CPU-time-like).
    pub cpu_time_s: f64,
    /// Completed guard count.
    pub calls: u64,
    /// Mean guard duration, microseconds.
    pub mean_us: f64,
    /// Factor-of-two p99 guard duration, microseconds.
    pub p99_us: f64,
    /// Non-empty log₂ latency buckets as `(le_ns, count)` pairs (see
    /// [`crate::Histogram::nonzero_buckets`]) — the raw data behind
    /// `p99_us`, for tools that want better quantiles.
    pub buckets: Vec<(u64, u64)>,
}

/// The structured description of one benchmark/study run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Run label (e.g. `perf_report`).
    pub name: String,
    /// Monte Carlo seed the run used.
    pub seed: u64,
    /// Chips simulated.
    pub chips: usize,
    /// Worker threads available to the run.
    pub threads: usize,
    /// Chips quarantined across the run.
    pub quarantined: u64,
    /// Peak resident set size, when the platform exposes it.
    pub peak_rss_bytes: Option<u64>,
    /// Headline scalar measurements.
    pub metrics: Vec<ManifestMetric>,
    /// Per-phase breakdown.
    pub phases: Vec<PhaseReport>,
    /// Raw counter values.
    pub counters: Vec<(&'static str, u64)>,
}

impl RunManifest {
    /// Builds a manifest from the registry's current state plus run
    /// metadata. `total_wall_s` is the caller's end-to-end wall time;
    /// `chips_per_sec` is derived from it.
    #[must_use]
    pub fn capture(
        name: &str,
        registry: &Registry,
        seed: u64,
        chips: usize,
        total_wall_s: f64,
    ) -> Self {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let chips_per_sec = if total_wall_s > 0.0 {
            chips as f64 / total_wall_s
        } else {
            0.0
        };
        let uops = registry.counter(Metric::UopsCommitted);
        let uops_per_sec = if total_wall_s > 0.0 {
            uops as f64 / total_wall_s
        } else {
            0.0
        };
        let mut metrics = vec![
            ManifestMetric {
                name: "total_wall_time".into(),
                value: total_wall_s,
                unit: "s".into(),
            },
            ManifestMetric {
                name: "chips_per_sec".into(),
                value: chips_per_sec,
                unit: "chips/s".into(),
            },
            ManifestMetric {
                name: "uops_per_sec".into(),
                value: uops_per_sec,
                unit: "uops/s".into(),
            },
        ];
        for phase in Phase::ALL {
            metrics.push(ManifestMetric {
                name: format!("phase_{}_cpu_time", phase.name()),
                value: registry.phase_nanos(phase) as f64 / 1e9,
                unit: "s".into(),
            });
            metrics.push(ManifestMetric {
                name: format!("phase_{}_wall_time", phase.name()),
                value: registry.phase_wall_nanos(phase) as f64 / 1e9,
                unit: "s".into(),
            });
        }
        RunManifest {
            name: name.to_owned(),
            seed,
            chips,
            threads,
            quarantined: registry.counter(Metric::ChipsQuarantined),
            peak_rss_bytes: peak_rss_bytes(),
            metrics,
            phases: Phase::ALL
                .iter()
                .map(|&p| {
                    let hist = registry.phase_histogram(p);
                    PhaseReport {
                        name: p.name(),
                        wall_time_s: registry.phase_wall_nanos(p) as f64 / 1e9,
                        cpu_time_s: registry.phase_nanos(p) as f64 / 1e9,
                        calls: registry.phase_calls(p),
                        mean_us: hist.mean_nanos() / 1e3,
                        p99_us: hist.quantile_nanos(0.99) as f64 / 1e3,
                        buckets: hist.nonzero_buckets(),
                    }
                })
                .collect(),
            counters: Metric::ALL
                .iter()
                .map(|&m| (m.name(), registry.counter(m)))
                .collect(),
        }
    }

    /// The value of a named metric, if present.
    #[must_use]
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.value)
    }

    /// Serializes the manifest to schema `yac-perf-report/2` JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\n  \"schema\": \"yac-perf-report/2\",\n");
        let _ = writeln!(out, "  \"name\": {},", json_string(&self.name));
        let _ = write!(
            out,
            "  \"run\": {{ \"seed\": {}, \"chips\": {}, \"threads\": {}, \"quarantined\": {}, \"peak_rss_bytes\": ",
            self.seed, self.chips, self.threads, self.quarantined
        );
        match self.peak_rss_bytes {
            Some(b) => {
                let _ = write!(out, "{b}");
            }
            None => out.push_str("null"),
        }
        out.push_str(" },\n  \"metrics\": [\n");
        for (i, m) in self.metrics.iter().enumerate() {
            let _ = write!(
                out,
                "    {{ \"name\": {}, \"value\": {}, \"unit\": {} }}",
                json_string(&m.name),
                json_f64(m.value),
                json_string(&m.unit)
            );
            out.push_str(if i + 1 < self.metrics.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"phases\": [\n");
        for (i, p) in self.phases.iter().enumerate() {
            let _ = write!(
                out,
                "    {{ \"name\": {}, \"wall_time_s\": {}, \"cpu_time_s\": {}, \"calls\": {}, \"mean_us\": {}, \"p99_us\": {}, \"buckets\": [",
                json_string(p.name),
                json_f64(p.wall_time_s),
                json_f64(p.cpu_time_s),
                p.calls,
                json_f64(p.mean_us),
                json_f64(p.p99_us)
            );
            for (j, (le_ns, count)) in p.buckets.iter().enumerate() {
                let _ = write!(out, "[{le_ns}, {count}]");
                if j + 1 < p.buckets.len() {
                    out.push_str(", ");
                }
            }
            out.push_str("] }");
            out.push_str(if i + 1 < self.phases.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"counters\": [\n");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            let _ = write!(
                out,
                "    {{ \"name\": {}, \"value\": {} }}",
                json_string(name),
                value
            );
            out.push_str(if i + 1 < self.counters.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Escapes a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number (finite guaranteed by callers;
/// non-finite values degrade to `0` rather than emitting invalid JSON).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "0".to_owned()
    }
}

/// Extracts `metrics[].value` for a named metric from schema
/// `yac-perf-report/2` JSON text (v1 works too — the `metrics` shape is
/// unchanged).
///
/// This is a deliberately narrow reader for our own stable serializer —
/// it searches for the `"name": "<name>"` / `"value": <number>` pair the
/// schema guarantees — not a general JSON parser (the container carries
/// no JSON dependency).
///
/// # Examples
///
/// ```
/// let json = r#"{ "metrics": [ { "name": "chips_per_sec", "value": 42.5, "unit": "chips/s" } ] }"#;
/// assert_eq!(yac_obs::extract_metric(json, "chips_per_sec"), Some(42.5));
/// assert_eq!(yac_obs::extract_metric(json, "missing"), None);
/// ```
#[must_use]
pub fn extract_metric(json: &str, name: &str) -> Option<f64> {
    let needle = format!("\"name\": {}", json_string(name));
    let at = json.find(&needle)?;
    let rest = &json[at + needle.len()..];
    let vstart = rest.find("\"value\":")? + "\"value\":".len();
    let tail = rest[vstart..].trim_start();
    let end = tail
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E')
        })
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// Peak resident set size of this process in bytes (Linux `VmHWM`),
/// `None` where `/proc` is unavailable.
#[must_use]
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_manifest() -> RunManifest {
        let reg = Registry::new();
        reg.enable();
        reg.add(Metric::DiesSampled, 200);
        reg.add(Metric::UopsCommitted, 1_000_000);
        reg.record_phase_nanos(Phase::Sample, 500_000_000);
        RunManifest::capture("unit_test", &reg, 2006, 200, 1.25)
    }

    #[test]
    fn capture_derives_throughput() {
        let m = sample_manifest();
        assert_eq!(m.metric("total_wall_time"), Some(1.25));
        assert_eq!(m.metric("chips_per_sec"), Some(160.0));
        assert_eq!(m.metric("uops_per_sec"), Some(800_000.0));
        assert_eq!(m.metric("phase_sample_cpu_time"), Some(0.5));
        // `record_phase_nanos` feeds externally-measured durations: CPU
        // time only, no wall interval.
        assert_eq!(m.metric("phase_sample_wall_time"), Some(0.0));
        assert_eq!(m.quarantined, 0);
        assert!(m.threads >= 1);
    }

    #[test]
    fn json_round_trips_through_extract_metric() {
        let m = sample_manifest();
        let json = m.to_json();
        assert!(json.contains("\"schema\": \"yac-perf-report/2\""));
        for metric in &m.metrics {
            let parsed = extract_metric(&json, &metric.name)
                .unwrap_or_else(|| panic!("metric {} missing from JSON", metric.name));
            assert!(
                (parsed - metric.value).abs() <= 1e-6 * metric.value.abs().max(1.0),
                "{}: {parsed} vs {}",
                metric.name,
                metric.value
            );
        }
        // Counters appear too.
        assert!(json.contains("\"dies_sampled\""));
    }

    #[test]
    fn phases_carry_wall_cpu_and_raw_buckets() {
        let m = sample_manifest();
        let sample = m.phases.iter().find(|p| p.name == "sample").unwrap();
        assert_eq!(sample.cpu_time_s, 0.5);
        assert_eq!(sample.wall_time_s, 0.0);
        // One 0.5 s call lands in the (2^28, 2^29] ns bucket.
        assert_eq!(sample.buckets, vec![(1u64 << 29, 1)]);
        let json = m.to_json();
        assert!(json.contains("\"cpu_time_s\": 0.500000"));
        assert!(json.contains(&format!("\"buckets\": [[{}, 1]]", 1u64 << 29)));
        // Phases with no samples serialize an empty bucket list.
        assert!(json.contains("\"buckets\": [] }"));
    }

    #[test]
    fn json_escapes_strings() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("plain"), "\"plain\"");
    }

    #[test]
    fn extract_metric_rejects_garbage() {
        assert_eq!(extract_metric("", "x"), None);
        assert_eq!(extract_metric("{\"name\": \"x\"}", "x"), None);
    }

    #[test]
    fn peak_rss_is_plausible_on_linux() {
        if let Some(rss) = peak_rss_bytes() {
            // A running test process surely uses between 64 KiB and 1 TiB.
            assert!(rss > 64 * 1024 && rss < (1 << 40), "rss {rss}");
        }
    }
}
