//! The 24 SPEC2000-like benchmark profiles used by the paper's
//! performance evaluation (13 floating-point + 11 integer, §5.2).
//!
//! SPEC2000 itself is a proprietary suite; these profiles are synthetic
//! stand-ins tuned to each benchmark's published qualitative character —
//! memory-bound pointer chasers (`mcf`), streaming array kernels (`swim`,
//! `art`, `applu`), branchy integer codes (`gcc`, `crafty`), and so on.
//! What matters for reproducing Table 6 / Figures 9–10 is the *spread* of
//! load-dependence pressure and L1 miss-rate across the suite, which these
//! profiles provide.

use crate::profile::{AddressPattern, BenchmarkProfile, InstructionMix, Suite};

#[allow(clippy::too_many_arguments)]
const fn profile_entry(
    name: &'static str,
    suite: Suite,
    load: f64,
    store: f64,
    branch: f64,
    fp_work: f64, // split 50/30/5 into fp_add/fp_mul/fp_div for Fp suites
    streaming: f64,
    random: f64,
    working_set_kib: u32,
    hot_set_kib: u32,
    stride_bytes: u32,
    dep_locality: f64,
    dep_decay: f64,
    branch_bias: f64,
    branch_sites: u32,
) -> BenchmarkProfile {
    let (fp_add, fp_mul, fp_div, int_mul) = match suite {
        Suite::Fp => (fp_work * 0.55, fp_work * 0.35, fp_work * 0.05, 0.01),
        Suite::Int => (0.0, 0.0, 0.0, fp_work),
    };
    BenchmarkProfile {
        name,
        suite,
        mix: InstructionMix {
            load,
            store,
            branch,
            int_mul,
            fp_add,
            fp_mul,
            fp_div,
        },
        pattern: AddressPattern {
            streaming,
            random,
            working_set_kib,
            hot_set_kib,
            stride_bytes,
        },
        dep_locality,
        dep_decay,
        branch_bias,
        branch_sites,
    }
}

/// All 24 benchmark profiles, integer suite first.
///
/// # Examples
///
/// ```
/// use yac_workload::spec2000;
///
/// let all = spec2000::all_profiles();
/// assert_eq!(all.len(), 24);
/// assert!(all.iter().all(|p| p.validate().is_ok()));
/// ```
#[must_use]
pub fn all_profiles() -> Vec<BenchmarkProfile> {
    use Suite::{Fp, Int};
    vec![
        // name, suite, load, store, branch, fp/imul, stream, rand, WS, hot, stride, depLoc, depDecay, bias, sites
        // (stream, rand, stride) are tuned so a 16 KB 4-way L1D sees each
        // benchmark's published miss-rate band; hot sets always fit in L1.
        profile_entry(
            "bzip2", Int, 0.26, 0.09, 0.13, 0.01, 0.20, 0.007, 1024, 6, 4, 0.92, 0.70, 0.94, 96,
        ),
        profile_entry(
            "crafty", Int, 0.28, 0.08, 0.14, 0.02, 0.08, 0.005, 128, 6, 4, 0.96, 0.75, 0.93, 256,
        ),
        profile_entry(
            "gap", Int, 0.26, 0.11, 0.12, 0.03, 0.15, 0.012, 512, 6, 4, 0.90, 0.70, 0.95, 128,
        ),
        profile_entry(
            "gcc", Int, 0.25, 0.12, 0.16, 0.01, 0.15, 0.035, 768, 6, 4, 0.94, 0.72, 0.91, 512,
        ),
        profile_entry(
            "gzip", Int, 0.22, 0.10, 0.14, 0.01, 0.20, 0.010, 192, 6, 4, 0.96, 0.75, 0.93, 64,
        ),
        profile_entry(
            "mcf", Int, 0.31, 0.09, 0.15, 0.01, 0.05, 0.215, 4096, 6, 4, 0.85, 0.60, 0.92, 96,
        ),
        profile_entry(
            "parser", Int, 0.24, 0.10, 0.16, 0.01, 0.12, 0.026, 384, 6, 4, 0.96, 0.74, 0.92, 192,
        ),
        profile_entry(
            "perlbmk", Int, 0.27, 0.13, 0.15, 0.01, 0.12, 0.011, 256, 6, 4, 0.94, 0.72, 0.94, 384,
        ),
        profile_entry(
            "twolf", Int, 0.25, 0.08, 0.14, 0.02, 0.10, 0.050, 256, 6, 4, 0.96, 0.76, 0.90, 128,
        ),
        profile_entry(
            "vortex", Int, 0.29, 0.14, 0.13, 0.01, 0.14, 0.018, 640, 6, 4, 0.92, 0.70, 0.97, 256,
        ),
        profile_entry(
            "vpr", Int, 0.26, 0.09, 0.13, 0.02, 0.12, 0.036, 320, 6, 4, 0.96, 0.74, 0.91, 128,
        ),
        profile_entry(
            "ammp", Fp, 0.27, 0.09, 0.06, 0.30, 0.25, 0.040, 1536, 6, 4, 0.85, 0.68, 0.98, 48,
        ),
        profile_entry(
            "applu", Fp, 0.25, 0.11, 0.04, 0.35, 0.60, 0.015, 2048, 6, 4, 0.75, 0.62, 0.99, 32,
        ),
        profile_entry(
            "apsi", Fp, 0.24, 0.10, 0.06, 0.32, 0.40, 0.010, 1024, 6, 4, 0.80, 0.65, 0.98, 48,
        ),
        profile_entry(
            "art", Fp, 0.30, 0.07, 0.07, 0.28, 0.70, 0.105, 3072, 6, 8, 0.78, 0.55, 0.96, 32,
        ),
        profile_entry(
            "equake", Fp, 0.29, 0.08, 0.06, 0.30, 0.30, 0.085, 1280, 6, 4, 0.90, 0.72, 0.97, 48,
        ),
        profile_entry(
            "facerec", Fp, 0.25, 0.08, 0.05, 0.33, 0.40, 0.010, 768, 6, 4, 0.80, 0.65, 0.98, 40,
        ),
        profile_entry(
            "fma3d", Fp, 0.26, 0.12, 0.06, 0.30, 0.40, 0.020, 1024, 6, 4, 0.82, 0.66, 0.98, 64,
        ),
        profile_entry(
            "galgel", Fp, 0.24, 0.09, 0.05, 0.36, 0.40, 0.010, 512, 6, 4, 0.78, 0.64, 0.98, 32,
        ),
        profile_entry(
            "lucas", Fp, 0.23, 0.10, 0.03, 0.38, 0.65, 0.010, 2048, 6, 4, 0.72, 0.60, 0.995, 16,
        ),
        profile_entry(
            "mesa", Fp, 0.24, 0.11, 0.08, 0.28, 0.12, 0.005, 192, 6, 4, 0.86, 0.68, 0.97, 96,
        ),
        profile_entry(
            "mgrid", Fp, 0.26, 0.08, 0.03, 0.38, 0.50, 0.008, 2048, 6, 4, 0.74, 0.60, 0.995, 16,
        ),
        profile_entry(
            "swim", Fp, 0.27, 0.10, 0.03, 0.36, 0.55, 0.004, 3072, 6, 8, 0.72, 0.60, 0.995, 16,
        ),
        profile_entry(
            "wupwise", Fp, 0.24, 0.09, 0.05, 0.34, 0.35, 0.006, 1024, 6, 4, 0.78, 0.64, 0.98, 32,
        ),
    ]
}

/// Looks up one profile by name.
///
/// # Examples
///
/// ```
/// use yac_workload::spec2000;
///
/// assert!(spec2000::profile("swim").is_some());
/// assert!(spec2000::profile("doom").is_none());
/// ```
#[must_use]
pub fn profile(name: &str) -> Option<BenchmarkProfile> {
    all_profiles().into_iter().find(|p| p.name == name)
}

/// Names of the integer benchmarks (11, as simulated by the paper).
#[must_use]
pub fn int_names() -> Vec<&'static str> {
    all_profiles()
        .into_iter()
        .filter(|p| p.suite == Suite::Int)
        .map(|p| p.name)
        .collect()
}

/// Names of the floating-point benchmarks (13, as simulated by the paper).
#[must_use]
pub fn fp_names() -> Vec<&'static str> {
    all_profiles()
        .into_iter()
        .filter(|p| p.suite == Suite::Fp)
        .map(|p| p.name)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_sizes_match_paper() {
        assert_eq!(int_names().len(), 11, "11 integer benchmarks");
        assert_eq!(fp_names().len(), 13, "13 floating-point benchmarks");
    }

    #[test]
    fn every_profile_validates() {
        for p in all_profiles() {
            p.validate().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = all_profiles().iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 24);
    }

    #[test]
    fn memory_bound_benchmarks_have_big_footprints() {
        for name in ["mcf", "art", "swim"] {
            let p = profile(name).unwrap();
            assert!(
                p.pattern.working_set_kib >= 2048,
                "{name} should be memory-bound"
            );
        }
        for name in ["crafty", "gzip", "mesa"] {
            let p = profile(name).unwrap();
            assert!(
                p.pattern.working_set_kib <= 256,
                "{name} should be core-bound"
            );
        }
    }

    #[test]
    fn fp_profiles_do_fp_work() {
        for p in all_profiles() {
            match p.suite {
                Suite::Fp => assert!(p.mix.fp_add > 0.0, "{}", p.name),
                Suite::Int => assert_eq!(p.mix.fp_add, 0.0, "{}", p.name),
            }
        }
    }

    #[test]
    fn lookup_is_case_sensitive_exact() {
        assert!(profile("mcf").is_some());
        assert!(profile("MCF").is_none());
    }
}
