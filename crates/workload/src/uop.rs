//! The micro-operation model consumed by the pipeline simulator.
//!
//! The performance evaluation only needs structural properties of the
//! instruction stream — operation classes, register dependences, memory
//! addresses and branch outcomes — not architectural semantics, so a
//! micro-op carries exactly those.

use std::fmt;

/// Operation classes with distinct execution resources/latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Single-cycle integer ALU operation.
    IntAlu,
    /// Integer multiply/divide.
    IntMul,
    /// Floating-point add/sub/compare.
    FpAdd,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide / square root (long latency, unpipelined).
    FpDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch.
    Branch,
}

impl OpClass {
    /// Execution latency in cycles once operands are available (loads add
    /// the cache access on top of address generation).
    #[must_use]
    pub fn exec_latency(self) -> u32 {
        match self {
            OpClass::IntAlu | OpClass::Branch | OpClass::Store => 1,
            OpClass::IntMul => 3,
            OpClass::FpAdd => 2,
            OpClass::FpMul => 4,
            OpClass::FpDiv => 12,
            OpClass::Load => 1, // address generation; memory time is added
        }
    }

    /// Whether the op reads or writes memory.
    #[must_use]
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::IntAlu => "alu",
            OpClass::IntMul => "mul",
            OpClass::FpAdd => "fadd",
            OpClass::FpMul => "fmul",
            OpClass::FpDiv => "fdiv",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Branch => "branch",
        };
        f.write_str(s)
    }
}

/// One micro-operation of a synthetic trace.
///
/// # Examples
///
/// ```
/// use yac_workload::{MicroOp, OpClass};
///
/// let op = MicroOp {
///     pc: 0x400000,
///     class: OpClass::Load,
///     srcs: [Some(3), None],
///     dest: Some(7),
///     addr: Some(0x1000),
///     taken: None,
/// };
/// assert!(op.class.is_mem());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroOp {
    /// Synthetic program counter (drives the branch predictor and I-cache).
    pub pc: u64,
    /// Operation class.
    pub class: OpClass,
    /// Up to two architectural source registers.
    pub srcs: [Option<u8>; 2],
    /// Architectural destination register, if the op produces a value.
    pub dest: Option<u8>,
    /// Effective address for memory operations.
    pub addr: Option<u64>,
    /// Branch outcome (branches only).
    pub taken: Option<bool>,
}

impl MicroOp {
    /// Iterator over the present source registers.
    pub fn sources(&self) -> impl Iterator<Item = u8> + '_ {
        self.srcs.iter().flatten().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_are_ordered_sensibly() {
        assert!(OpClass::FpDiv.exec_latency() > OpClass::FpMul.exec_latency());
        assert!(OpClass::FpMul.exec_latency() > OpClass::IntAlu.exec_latency());
        assert_eq!(OpClass::IntAlu.exec_latency(), 1);
    }

    #[test]
    fn memory_classification() {
        assert!(OpClass::Load.is_mem());
        assert!(OpClass::Store.is_mem());
        assert!(!OpClass::Branch.is_mem());
        assert!(!OpClass::FpAdd.is_mem());
    }

    #[test]
    fn sources_iterates_present_registers() {
        let op = MicroOp {
            pc: 0,
            class: OpClass::IntAlu,
            srcs: [Some(1), Some(2)],
            dest: Some(3),
            addr: None,
            taken: None,
        };
        assert_eq!(op.sources().collect::<Vec<_>>(), vec![1, 2]);
        let one = MicroOp {
            srcs: [None, Some(9)],
            ..op
        };
        assert_eq!(one.sources().collect::<Vec<_>>(), vec![9]);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!OpClass::Load.to_string().is_empty());
    }
}
