//! Typed errors for benchmark profiles.
//!
//! Part of the workspace-wide fault-tolerance taxonomy. A rejected
//! [`crate::BenchmarkProfile`] becomes a [`ProfileError`] pairing the
//! benchmark's name with the [`ProfileIssue`]; `Display` output matches
//! the legacy `"{name}: {what}"` strings exactly.

use std::error::Error;
use std::fmt;

/// The invariant a [`crate::BenchmarkProfile`] violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileIssue {
    /// One of the named instruction-mix fractions is outside `[0, 1]`.
    FractionOutOfRange(&'static str),
    /// The named fractions sum past 100 %.
    MixExceedsWhole,
    /// Streaming + random address fractions sum past 100 %.
    PatternExceedsWhole,
    /// The working or hot set size is zero.
    ZeroSet,
    /// The hot set is larger than the working set.
    HotSetTooLarge,
    /// The access stride is zero.
    ZeroStride,
    /// `dep_locality` is outside `[0, 1]`.
    BadDepLocality,
    /// `dep_decay` is outside `(0, 1]`.
    BadDepDecay,
    /// `branch_bias` is outside `[0.5, 1]`.
    BadBranchBias,
    /// Zero branch sites.
    NoBranchSites,
}

impl fmt::Display for ProfileIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileIssue::FractionOutOfRange(label) => {
                write!(f, "{label} fraction out of range")
            }
            ProfileIssue::MixExceedsWhole => f.write_str("instruction mix exceeds 100%"),
            ProfileIssue::PatternExceedsWhole => {
                f.write_str("address pattern fractions exceed 100%")
            }
            ProfileIssue::ZeroSet => f.write_str("working/hot set must be nonzero"),
            ProfileIssue::HotSetTooLarge => f.write_str("hot set cannot exceed the working set"),
            ProfileIssue::ZeroStride => f.write_str("stride must be nonzero"),
            ProfileIssue::BadDepLocality => f.write_str("dependency locality out of range"),
            ProfileIssue::BadDepDecay => f.write_str("dependency decay must lie in (0, 1]"),
            ProfileIssue::BadBranchBias => f.write_str("branch bias must lie in [0.5, 1]"),
            ProfileIssue::NoBranchSites => f.write_str("at least one branch site required"),
        }
    }
}

impl Error for ProfileIssue {}

/// A rejected [`crate::BenchmarkProfile`]: which benchmark, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileError {
    /// The benchmark's configured name (e.g. `"mcf"`).
    pub benchmark: String,
    /// The violated invariant.
    pub issue: ProfileIssue,
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.benchmark, self.issue)
    }
}

impl Error for ProfileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.issue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_legacy_format() {
        let e = ProfileError {
            benchmark: "mcf".into(),
            issue: ProfileIssue::FractionOutOfRange("load"),
        };
        assert_eq!(e.to_string(), "mcf: load fraction out of range");
        assert_eq!(
            ProfileError {
                benchmark: "gzip".into(),
                issue: ProfileIssue::ZeroStride,
            }
            .to_string(),
            "gzip: stride must be nonzero"
        );
    }
}
