//! Benchmark profiles: the tunable statistical shape of a synthetic
//! workload.

use crate::error::{ProfileError, ProfileIssue};
use std::fmt;

/// Which SPEC2000 suite a profile imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPECint2000-like.
    Int,
    /// SPECfp2000-like.
    Fp,
}

/// Fractions of each op class in the dynamic instruction stream. The
/// remainder after all named classes is single-cycle integer ALU work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstructionMix {
    /// Load fraction.
    pub load: f64,
    /// Store fraction.
    pub store: f64,
    /// Branch fraction.
    pub branch: f64,
    /// Integer multiply fraction.
    pub int_mul: f64,
    /// FP add fraction.
    pub fp_add: f64,
    /// FP multiply fraction.
    pub fp_mul: f64,
    /// FP divide fraction.
    pub fp_div: f64,
}

impl InstructionMix {
    /// Sum of all named fractions (must be ≤ 1).
    #[must_use]
    pub fn named_total(&self) -> f64 {
        self.load
            + self.store
            + self.branch
            + self.int_mul
            + self.fp_add
            + self.fp_mul
            + self.fp_div
    }
}

/// The address-stream blend of a profile. Fractions must sum to ≤ 1; the
/// remainder reuses the hot pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AddressPattern {
    /// Fraction of memory accesses walking sequential streams (spatial
    /// locality: stride ≪ block size ⇒ high hit rate).
    pub streaming: f64,
    /// Fraction hitting uniformly random locations in the full working set
    /// (pointer chasing).
    pub random: f64,
    /// Total data footprint in KiB.
    pub working_set_kib: u32,
    /// Size of the hot (frequently reused) region in KiB.
    pub hot_set_kib: u32,
    /// Stride in bytes of the streaming component.
    pub stride_bytes: u32,
}

/// A named synthetic benchmark: everything the trace generator needs.
///
/// # Examples
///
/// ```
/// use yac_workload::spec2000;
///
/// let mcf = spec2000::profile("mcf").unwrap();
/// assert!(mcf.pattern.working_set_kib > 1024, "mcf is memory-bound");
/// mcf.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkProfile {
    /// Benchmark name ("gzip", "mcf", ...).
    pub name: &'static str,
    /// Which suite it belongs to.
    pub suite: Suite,
    /// Dynamic instruction mix.
    pub mix: InstructionMix,
    /// Memory address behaviour.
    pub pattern: AddressPattern,
    /// Probability that a source register reads a *recent* producer; the
    /// distance to that producer is geometric with [`Self::dep_decay`].
    /// High values = tight dependence chains = low ILP.
    pub dep_locality: f64,
    /// Parameter of the geometric dependency-distance distribution
    /// (probability of stopping at each step back; higher = tighter).
    pub dep_decay: f64,
    /// Probability a branch goes its PC's preferred direction; 0.5 =
    /// unpredictable, 1.0 = perfectly biased.
    pub branch_bias: f64,
    /// Number of distinct static branch sites (predictor pressure).
    pub branch_sites: u32,
}

impl BenchmarkProfile {
    /// Validates all fractions and ranges.
    ///
    /// # Errors
    ///
    /// Returns the [`ProfileError`] naming this benchmark and the
    /// violated invariant.
    pub fn validate(&self) -> Result<(), ProfileError> {
        let err = |issue: ProfileIssue| {
            Err(ProfileError {
                benchmark: self.name.to_string(),
                issue,
            })
        };
        let mix = &self.mix;
        for (label, f) in [
            ("load", mix.load),
            ("store", mix.store),
            ("branch", mix.branch),
            ("int_mul", mix.int_mul),
            ("fp_add", mix.fp_add),
            ("fp_mul", mix.fp_mul),
            ("fp_div", mix.fp_div),
        ] {
            if !(0.0..=1.0).contains(&f) {
                return err(ProfileIssue::FractionOutOfRange(label));
            }
        }
        if mix.named_total() > 1.0 {
            return err(ProfileIssue::MixExceedsWhole);
        }
        if self.pattern.streaming + self.pattern.random > 1.0 {
            return err(ProfileIssue::PatternExceedsWhole);
        }
        if self.pattern.working_set_kib == 0 || self.pattern.hot_set_kib == 0 {
            return err(ProfileIssue::ZeroSet);
        }
        if self.pattern.hot_set_kib > self.pattern.working_set_kib {
            return err(ProfileIssue::HotSetTooLarge);
        }
        if self.pattern.stride_bytes == 0 {
            return err(ProfileIssue::ZeroStride);
        }
        if !(0.0..=1.0).contains(&self.dep_locality) {
            return err(ProfileIssue::BadDepLocality);
        }
        if !(0.0 < self.dep_decay && self.dep_decay <= 1.0) {
            return err(ProfileIssue::BadDepDecay);
        }
        if !(0.5..=1.0).contains(&self.branch_bias) {
            return err(ProfileIssue::BadBranchBias);
        }
        if self.branch_sites == 0 {
            return err(ProfileIssue::NoBranchSites);
        }
        Ok(())
    }
}

impl BenchmarkProfile {
    /// A `[0, 1]` memory-intensity score for the adaptive Hybrid policy:
    /// how much of this workload's time goes to the memory system rather
    /// than the core. Combines the memory-op fraction with how badly the
    /// footprint overflows a 16 KB L1.
    ///
    /// # Examples
    ///
    /// ```
    /// use yac_workload::spec2000;
    ///
    /// let mcf = spec2000::profile("mcf").unwrap().memory_intensity();
    /// let crafty = spec2000::profile("crafty").unwrap().memory_intensity();
    /// assert!(mcf > crafty, "mcf {mcf} vs crafty {crafty}");
    /// ```
    #[must_use]
    pub fn memory_intensity(&self) -> f64 {
        let mem_fraction = self.mix.load + self.mix.store;
        // L1 pressure: streaming misses once per block; random accesses
        // miss in proportion to how far the working set exceeds 16 KiB.
        let ws = f64::from(self.pattern.working_set_kib);
        let overflow = ((ws - 16.0) / ws).max(0.0);
        let miss_pressure = self.pattern.streaming
            * (f64::from(self.pattern.stride_bytes) / 32.0).min(1.0)
            + self.pattern.random * overflow;
        (6.0 * mem_fraction * miss_pressure).clamp(0.0, 1.0)
    }
}

impl fmt::Display for BenchmarkProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({:?}): {}% loads, WS {} KiB",
            self.name,
            self.suite,
            (self.mix.load * 100.0).round(),
            self.pattern.working_set_kib
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> BenchmarkProfile {
        BenchmarkProfile {
            name: "test",
            suite: Suite::Int,
            mix: InstructionMix {
                load: 0.25,
                store: 0.1,
                branch: 0.15,
                int_mul: 0.02,
                fp_add: 0.0,
                fp_mul: 0.0,
                fp_div: 0.0,
            },
            pattern: AddressPattern {
                streaming: 0.3,
                random: 0.2,
                working_set_kib: 256,
                hot_set_kib: 16,
                stride_bytes: 8,
            },
            dep_locality: 0.6,
            dep_decay: 0.4,
            branch_bias: 0.9,
            branch_sites: 64,
        }
    }

    #[test]
    fn base_profile_validates() {
        base().validate().unwrap();
    }

    #[test]
    fn overfull_mix_is_rejected() {
        let mut p = base();
        p.mix.load = 0.9;
        p.mix.store = 0.9;
        assert!(p.validate().is_err());
    }

    #[test]
    fn hot_set_must_fit_working_set() {
        let mut p = base();
        p.pattern.hot_set_kib = 1024;
        assert!(p.validate().is_err());
    }

    #[test]
    fn branch_bias_range_enforced() {
        let mut p = base();
        p.branch_bias = 0.3;
        assert!(p.validate().is_err());
        p.branch_bias = 1.0;
        assert!(p.validate().is_ok());
    }

    #[test]
    fn pattern_fractions_bounded() {
        let mut p = base();
        p.pattern.streaming = 0.8;
        p.pattern.random = 0.5;
        assert!(p.validate().is_err());
    }

    #[test]
    fn memory_intensity_is_bounded_and_monotone_in_pressure() {
        let mut p = base();
        let low = p.memory_intensity();
        assert!((0.0..=1.0).contains(&low));
        p.pattern.random = 0.6;
        p.pattern.streaming = 0.2;
        p.pattern.working_set_kib = 4096;
        let high = p.memory_intensity();
        assert!(high > low);
        assert!(high <= 1.0);
    }

    #[test]
    fn display_mentions_name() {
        assert!(base().to_string().contains("test"));
    }
}
