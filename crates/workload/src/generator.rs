//! Deterministic synthetic trace generation from a benchmark profile.

use crate::profile::BenchmarkProfile;
use crate::uop::{MicroOp, OpClass};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Base virtual address of the synthetic data segment.
const DATA_BASE: u64 = 0x4000_0000;
/// Base virtual address of the synthetic code segment.
const CODE_BASE: u64 = 0x0040_0000;
/// Number of concurrent streaming pointers.
const STREAMS: usize = 4;
/// How many recent producers a source dependence can reach back to.
const DEP_WINDOW: usize = 64;
/// First architectural register handed out to producers (0..FIRST_DEST are
/// "always ready" globals).
const FIRST_DEST: u8 = 8;
/// Total architectural registers.
const REGS: u8 = 64;

/// An infinite, deterministic micro-op stream shaped by a
/// [`BenchmarkProfile`].
///
/// # Examples
///
/// ```
/// use yac_workload::{spec2000, TraceGenerator};
///
/// let profile = spec2000::profile("gzip").unwrap();
/// let trace: Vec<_> = TraceGenerator::new(profile, 42).take(1000).collect();
/// assert_eq!(trace.len(), 1000);
/// let loads = trace.iter().filter(|op| op.class == yac_workload::OpClass::Load).count();
/// assert!(loads > 150 && loads < 300, "load mix ~22%: {loads}");
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: BenchmarkProfile,
    rng: SmallRng,
    index: u64,
    loop_len: u64,
    recent_dests: VecDeque<u8>,
    recent_load_dests: VecDeque<u8>,
    next_dest: u8,
    stream_ptrs: [u64; STREAMS],
    stream_turn: usize,
    branch_dirs: Vec<bool>,
}

impl TraceGenerator {
    /// Creates a generator for `profile`, fully determined by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails validation.
    #[must_use]
    pub fn new(profile: BenchmarkProfile, seed: u64) -> Self {
        yac_obs::inc(yac_obs::Metric::TracesCreated);
        profile.validate().expect("invalid benchmark profile");
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let branch_dirs = (0..profile.branch_sites).map(|_| rng.gen()).collect();
        // The dynamic loop body: roughly 8 ops per static branch site, so
        // the branch predictor sees every site regularly and the I-side
        // footprint scales with the benchmark's control complexity.
        let loop_len = u64::from(profile.branch_sites) * 8;
        let ws_bytes = u64::from(profile.pattern.working_set_kib) * 1024;
        // Random starting positions: evenly spaced starts would alias to
        // the same cache set (working sets are multiples of the L1 way
        // size) and advance in lockstep, thrashing a single set.
        let mut stream_ptrs = [0u64; STREAMS];
        for p in &mut stream_ptrs {
            *p = rng.gen_range(0..ws_bytes) & !7;
        }
        TraceGenerator {
            profile,
            rng,
            index: 0,
            loop_len,
            recent_dests: VecDeque::with_capacity(DEP_WINDOW),
            recent_load_dests: VecDeque::with_capacity(DEP_WINDOW),
            next_dest: FIRST_DEST,
            stream_ptrs,
            stream_turn: 0,
            branch_dirs,
        }
    }

    /// The profile being generated.
    #[must_use]
    pub fn profile(&self) -> &BenchmarkProfile {
        &self.profile
    }

    /// Collects the next `n` micro-ops.
    #[must_use]
    pub fn generate(&mut self, n: usize) -> Vec<MicroOp> {
        self.by_ref().take(n).collect()
    }

    fn pick_class(&mut self) -> OpClass {
        let mix = &self.profile.mix;
        let mut x: f64 = self.rng.gen();
        for (class, f) in [
            (OpClass::Load, mix.load),
            (OpClass::Store, mix.store),
            (OpClass::Branch, mix.branch),
            (OpClass::IntMul, mix.int_mul),
            (OpClass::FpAdd, mix.fp_add),
            (OpClass::FpMul, mix.fp_mul),
            (OpClass::FpDiv, mix.fp_div),
        ] {
            if x < f {
                return class;
            }
            x -= f;
        }
        OpClass::IntAlu
    }

    fn pick_source(&mut self) -> u8 {
        if !self.recent_dests.is_empty() && self.rng.gen::<f64>() < self.profile.dep_locality {
            // Loaded values are consumed disproportionately often (address
            // arithmetic, compares and stores on just-fetched data), which
            // is what makes load latency so visible in real codes.
            const LOAD_USE_BIAS: f64 = 0.75;
            let from_loads =
                !self.recent_load_dests.is_empty() && self.rng.gen::<f64>() < LOAD_USE_BIAS;
            let window: &VecDeque<u8> = if from_loads {
                &self.recent_load_dests
            } else {
                &self.recent_dests
            };
            // Geometric distance back into the recent-producer window.
            let p = self.profile.dep_decay;
            let u: f64 = self.rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let d = 1 + (u.ln() / (1.0 - p).ln()) as usize;
            let d = d.min(window.len());
            window[window.len() - d]
        } else {
            self.rng.gen_range(0..REGS)
        }
    }

    fn allocate_dest(&mut self) -> u8 {
        let dest = self.next_dest;
        self.next_dest += 1;
        if self.next_dest >= REGS {
            self.next_dest = FIRST_DEST;
        }
        if self.recent_dests.len() == DEP_WINDOW {
            self.recent_dests.pop_front();
        }
        self.recent_dests.push_back(dest);
        dest
    }

    fn pick_address(&mut self) -> u64 {
        let pat = &self.profile.pattern;
        let ws = u64::from(pat.working_set_kib) * 1024;
        let hot = u64::from(pat.hot_set_kib) * 1024;
        let x: f64 = self.rng.gen();
        let offset = if x < pat.streaming {
            let turn = self.stream_turn;
            self.stream_turn = (self.stream_turn + 1) % STREAMS;
            let ptr = self.stream_ptrs[turn];
            self.stream_ptrs[turn] = (ptr + u64::from(pat.stride_bytes)) % ws;
            ptr
        } else if x < pat.streaming + pat.random {
            self.rng.gen_range(0..ws)
        } else {
            self.rng.gen_range(0..hot)
        };
        DATA_BASE + (offset & !7)
    }
}

impl Iterator for TraceGenerator {
    type Item = MicroOp;

    fn next(&mut self) -> Option<MicroOp> {
        let class = self.pick_class();
        let pc = CODE_BASE + (self.index % self.loop_len) * 4;
        self.index += 1;

        let op = match class {
            OpClass::Load => {
                let addr = self.pick_address();
                let src = self.pick_source();
                let dest = self.allocate_dest();
                if self.recent_load_dests.len() == DEP_WINDOW {
                    self.recent_load_dests.pop_front();
                }
                self.recent_load_dests.push_back(dest);
                MicroOp {
                    pc,
                    class,
                    srcs: [Some(src), None],
                    dest: Some(dest),
                    addr: Some(addr),
                    taken: None,
                }
            }
            OpClass::Store => {
                let addr = self.pick_address();
                let data = self.pick_source();
                let base = self.pick_source();
                MicroOp {
                    pc,
                    class,
                    srcs: [Some(data), Some(base)],
                    dest: None,
                    addr: Some(addr),
                    taken: None,
                }
            }
            OpClass::Branch => {
                let site = (pc / 32) as usize % self.branch_dirs.len();
                let preferred = self.branch_dirs[site];
                let follow = self.rng.gen::<f64>() < self.profile.branch_bias;
                let src = self.pick_source();
                MicroOp {
                    pc,
                    class,
                    srcs: [Some(src), None],
                    dest: None,
                    addr: None,
                    taken: Some(preferred == follow),
                }
            }
            _ => {
                let a = self.pick_source();
                let b = self.pick_source();
                let dest = self.allocate_dest();
                MicroOp {
                    pc,
                    class,
                    srcs: [Some(a), Some(b)],
                    dest: Some(dest),
                    addr: None,
                    taken: None,
                }
            }
        };
        Some(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec2000;

    fn gen_for(name: &str, seed: u64) -> TraceGenerator {
        TraceGenerator::new(spec2000::profile(name).unwrap(), seed)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = gen_for("gcc", 5).generate(2_000);
        let b = gen_for("gcc", 5).generate(2_000);
        assert_eq!(a, b);
        let c = gen_for("gcc", 6).generate(2_000);
        assert_ne!(a, c);
    }

    #[test]
    fn mix_fractions_are_respected() {
        for name in ["mcf", "swim", "gzip"] {
            let profile = spec2000::profile(name).unwrap();
            let trace = gen_for(name, 1).generate(50_000);
            let frac = |class: OpClass| {
                trace.iter().filter(|op| op.class == class).count() as f64 / trace.len() as f64
            };
            assert!(
                (frac(OpClass::Load) - profile.mix.load).abs() < 0.01,
                "{name} loads"
            );
            assert!(
                (frac(OpClass::Store) - profile.mix.store).abs() < 0.01,
                "{name} stores"
            );
            assert!(
                (frac(OpClass::Branch) - profile.mix.branch).abs() < 0.01,
                "{name} branches"
            );
        }
    }

    #[test]
    fn memory_ops_have_addresses_and_only_they_do() {
        for op in gen_for("vpr", 2).generate(5_000) {
            assert_eq!(op.addr.is_some(), op.class.is_mem(), "{op:?}");
            assert_eq!(op.taken.is_some(), op.class == OpClass::Branch);
        }
    }

    #[test]
    fn addresses_stay_inside_the_working_set() {
        let profile = spec2000::profile("gzip").unwrap();
        let ws = u64::from(profile.pattern.working_set_kib) * 1024;
        for op in gen_for("gzip", 3).generate(20_000) {
            if let Some(addr) = op.addr {
                assert!(addr >= DATA_BASE && addr < DATA_BASE + ws);
            }
        }
    }

    #[test]
    fn biased_branches_mostly_follow_their_direction() {
        let trace = gen_for("swim", 4).generate(100_000); // bias 0.98
        let mut per_site: std::collections::HashMap<u64, (u32, u32)> = Default::default();
        for op in &trace {
            if let Some(taken) = op.taken {
                let e = per_site.entry(op.pc).or_default();
                if taken {
                    e.0 += 1;
                } else {
                    e.1 += 1;
                }
            }
        }
        // Aggregate per-site majority agreement should approach the bias.
        let mut majority = 0u32;
        let mut total = 0u32;
        for (t, n) in per_site.values() {
            majority += t.max(n);
            total += t + n;
        }
        let rate = f64::from(majority) / f64::from(total);
        assert!(
            rate > 0.93,
            "bias 0.98 should yield high per-site agreement, got {rate}"
        );
    }

    #[test]
    fn dependencies_reach_recent_producers() {
        // With high dep_locality, most sources should name a register
        // produced within the last DEP_WINDOW ops.
        let trace = gen_for("mcf", 7).generate(10_000);
        let mut recent: VecDeque<u8> = VecDeque::new();
        let mut local = 0usize;
        let mut total = 0usize;
        for op in &trace {
            for s in op.sources() {
                total += 1;
                if recent.contains(&s) {
                    local += 1;
                }
            }
            if let Some(d) = op.dest {
                if recent.len() == DEP_WINDOW {
                    recent.pop_front();
                }
                recent.push_back(d);
            }
        }
        let rate = local as f64 / total as f64;
        assert!(rate > 0.5, "mcf dep locality 0.72, measured {rate}");
    }

    #[test]
    fn pcs_wrap_in_a_loop() {
        let mut g = gen_for("lucas", 8);
        let loop_len = g.loop_len;
        let trace = g.generate(2 * loop_len as usize);
        assert_eq!(trace[0].pc, trace[loop_len as usize].pc);
    }

    #[test]
    fn streaming_profiles_produce_sequential_addresses() {
        // A streaming access continues from an address seen a few memory
        // ops earlier (its stream pointer); count how many accesses sit
        // within one stride of a recent predecessor.
        let trace = gen_for("swim", 9).generate(4_000);
        let addrs: Vec<u64> = trace.iter().filter_map(|op| op.addr).collect();
        let mut sequential = 0usize;
        for (i, &a) in addrs.iter().enumerate().skip(16) {
            if addrs[i - 16..i]
                .iter()
                .any(|&prev| a.wrapping_sub(prev) <= 8)
            {
                sequential += 1;
            }
        }
        let rate = sequential as f64 / (addrs.len() - 16) as f64;
        assert!(rate > 0.5, "swim should look like streaming: {rate}");
    }
}
