//! Deterministic synthetic SPEC2000-like workload generation for the
//! performance half of *Yield-Aware Cache Architectures* (MICRO 2006).
//!
//! The paper simulates 13 floating-point and 11 integer SPEC2000
//! benchmarks (§5.2). SPEC2000 is proprietary, so this crate synthesises
//! micro-op traces from per-benchmark statistical profiles — instruction
//! mix, dependency-distance structure, working-set/locality blend and
//! branch bias — tuned to each benchmark's published character.
//!
//! # Examples
//!
//! ```
//! use yac_workload::{spec2000, OpClass, TraceGenerator};
//!
//! let profile = spec2000::profile("mcf").unwrap();
//! let mut generator = TraceGenerator::new(profile, 2006);
//! let trace = generator.generate(10_000);
//! let loads = trace.iter().filter(|op| op.class == OpClass::Load).count();
//! assert!(loads > 2_500, "mcf is load-heavy");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod generator;
pub mod profile;
pub mod spec2000;
pub mod uop;

pub use error::{ProfileError, ProfileIssue};
pub use generator::TraceGenerator;
pub use profile::{AddressPattern, BenchmarkProfile, InstructionMix, Suite};
pub use uop::{MicroOp, OpClass};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<super::TraceGenerator>();
        assert_send_sync::<super::BenchmarkProfile>();
        assert_send_sync::<super::MicroOp>();
    }
}
