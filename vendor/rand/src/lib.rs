//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the small slice of `rand` 0.8 it actually uses: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen`, `gen_range`, and `gen_bool`. The generator is xoshiro256++
//! seeded through SplitMix64 — the same construction `SmallRng` uses on
//! 64-bit targets — so streams are deterministic, well mixed, and cheap.
//! Exact bit-compatibility with upstream `rand` is *not* promised (and
//! nothing in the workspace depends on it; all statistical tests are
//! distribution-shaped, not golden-valued).

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators. Only the `seed_from_u64` entry point is offered;
/// every call site in the workspace seeds from a SplitMix64-derived u64.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from their "standard" distribution
/// (`[0, 1)` for floats, the full domain for integers and bool).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly distributed mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Use the high bit: xoshiro's low bits are its weakest.
        rng.next_u64() >> 63 == 1
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Types usable as `gen_range` bounds.
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[low, high)`. `high` must exceed `low`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample from an empty range");
                let span = (high - low) as u64;
                // Multiply-shift reduction (Lemire); bias is < 2^-64 per
                // draw, far below anything the simulations can observe.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                low + hi as $t
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "cannot sample from an empty range");
        low + f64::sample_standard(rng) * (high - low)
    }
}

/// User-facing extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the type's standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++ with
    /// SplitMix64 state expansion, matching the construction upstream
    /// `rand` 0.8 uses for `SmallRng` on 64-bit platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..8).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..8).map(|_| r.gen()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(8);
            (0..8).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn unit_floats_stay_in_range_and_fill_it() {
        let mut r = SmallRng::seed_from_u64(2006);
        let draws: Vec<f64> = (0..4096).map(|_| r.gen::<f64>()).collect();
        assert!(draws.iter().all(|x| (0.0..1.0).contains(x)));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.03, "uniform mean off: {mean}");
        assert!(draws.iter().any(|&x| x < 0.05));
        assert!(draws.iter().any(|&x| x > 0.95));
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10usize..17);
            assert!((10..17).contains(&v));
        }
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..7)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "small ranges must cover all values"
        );
    }
}
