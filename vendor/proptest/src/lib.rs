//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the strategy combinators and the `proptest!` macro surface its test
//! suites use. Semantics differ from upstream in two deliberate ways:
//!
//! - **No shrinking.** A failing case reports its inputs via the ordinary
//!   `assert!` panic message; it is not minimised.
//! - **Fully deterministic.** Case `i` of every test derives its RNG from
//!   SplitMix64 of `i`, so runs are reproducible across machines, thread
//!   counts, and repetitions — a property the workspace's own
//!   byte-identical-quarantine tests rely on.
//!
//! Supported strategies: numeric ranges (`0.0f64..1.0`, `0u64..n`,
//! `0usize..n`), [`strategy::Just`], [`arbitrary::any`], tuples up to
//! arity 8, [`collection::vec`], [`option::of`], `prop_oneof!`, and
//! `.prop_map`/`.prop_filter`.

pub mod test_runner {
    /// Runner configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the full suite fast while
            // still exploring each property broadly.
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 stream used to drive strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator whose output is fully determined by `seed`.
        #[must_use]
        pub fn deterministic(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw from `[0, bound)` for `bound > 0`.
        pub fn below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// Seed for the `case`-th case of a property run.
    #[must_use]
    pub fn case_seed(case: u32) -> u64 {
        // Golden-ratio spacing keeps per-case streams decorrelated.
        0x5851_f42d_4c95_7f2d ^ (u64::from(case)).wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produces one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Rejects generated values failing `f` (by resampling; upstream
        /// semantics of bounded rejection are approximated with a cap).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                f,
                whence,
            }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        f: F,
        whence: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1024 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 1024 consecutive samples: {}",
                self.whence
            )
        }
    }

    /// Uniform choice between same-typed strategies (`prop_oneof!`).
    #[derive(Debug, Clone)]
    pub struct Union<S> {
        options: Vec<S>,
    }

    impl<S: Strategy> Union<S> {
        /// A strategy drawing uniformly from `options`.
        #[must_use]
        pub fn new(options: Vec<S>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_uint_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_uint_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value from the full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Arbitrary for u16 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.next_u64() >> 48) as u16
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.next_u64() >> 56) as u8
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as usize
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() >> 63 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite full-ish-domain floats; NaN/Inf injection is done
            // explicitly by the fault harness, not by ambient generation.
            (rng.unit_f64() - 0.5) * 2e12
        }
    }

    /// Strategy over a type's full domain.
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The `any::<T>()` entry point.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec`s with strategy-driven elements and a length
    /// drawn from `len` (half-open, like upstream's `SizeRange`).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// `prop::collection::vec(element, 1..200)`.
    #[must_use]
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec-length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `None` about a quarter of the time.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `prop::option::of(strategy)`.
    #[must_use]
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Path-compatible alias namespace (`prop::collection::vec`, ...).
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares deterministic property tests. Each `fn name(pat in strategy)`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            @cfg (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __strategies = ($($strat,)+);
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    $crate::test_runner::case_seed(__case),
                );
                let ($($arg,)+) =
                    $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
                $body
            }
        }
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
}

/// Asserts a property-test condition (no shrinking; panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside property tests.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside property tests.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among same-typed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($option),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_generate_in_bounds(
            x in 0.0f64..1.0,
            n in 3u64..9,
            pair in (0usize..4, any::<bool>()),
            v in prop::collection::vec(0u64..10, 1..20),
            opt in prop::option::of(Just(7usize)),
        ) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((3..9).contains(&n));
            prop_assert!(pair.0 < 4);
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&e| e < 10));
            if let Some(s) = opt {
                prop_assert_eq!(s, 7);
            }
        }
    }

    #[test]
    fn generation_is_deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::{case_seed, TestRng};
        let strat = (0.0f64..1.0, 0u64..1000);
        let once: Vec<(f64, u64)> = (0..16)
            .map(|i| strat.generate(&mut TestRng::deterministic(case_seed(i))))
            .collect();
        let again: Vec<(f64, u64)> = (0..16)
            .map(|i| strat.generate(&mut TestRng::deterministic(case_seed(i))))
            .collect();
        assert_eq!(once, again);
    }

    #[test]
    fn oneof_covers_every_arm() {
        use crate::strategy::{Just, Strategy, Union};
        use crate::test_runner::TestRng;
        let u = Union::new(vec![Just(1u8), Just(2), Just(3)]);
        let mut rng = TestRng::deterministic(5);
        let mut seen = [false; 4];
        for _ in 0..64 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }
}
