//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the benchmarking API surface its `[[bench]]` targets use. Instead of
//! criterion's statistical machinery, each benchmark closure is timed for
//! a handful of iterations and the median is printed — enough to keep
//! `cargo bench` (and `cargo test --benches`) compiling and giving
//! order-of-magnitude numbers, without any dependency footprint.

use std::time::{Duration, Instant};

const WARMUP_ITERS: u64 = 2;
const MEASURE_ITERS: u64 = 8;

/// How `iter_batched` amortises setup. The stand-in always regenerates
/// the input per iteration, so the variants only differ upstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Times a single benchmark's closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `routine` repeatedly, recording wall-clock per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(routine());
        }
        for _ in 0..MEASURE_ITERS {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Runs `routine` on fresh inputs from `setup`, timing only `routine`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for i in 0..WARMUP_ITERS + MEASURE_ITERS {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            if i >= WARMUP_ITERS {
                self.samples.push(start.elapsed());
            }
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort();
        self.samples[self.samples.len() / 2]
    }
}

/// Entry point handed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    group_prefix: Option<String>,
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        let label = match &self.group_prefix {
            Some(prefix) => format!("{prefix}/{name}"),
            None => name.to_string(),
        };
        println!("bench {label:<48} median {:>12.3?}", bencher.median());
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks. Tuning knobs are accepted and ignored.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stand-in's iteration count is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let previous = self.criterion.group_prefix.replace(self.name.clone());
        self.criterion.bench_function(name, f);
        self.criterion.group_prefix = previous;
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert_eq!(runs, WARMUP_ITERS + MEASURE_ITERS);
    }

    #[test]
    fn groups_prefix_names_and_restore_state() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(10).measurement_time(Duration::from_secs(1));
            g.bench_function("inner", |b| {
                b.iter_batched(|| 1u64, |x| x + 1, BatchSize::LargeInput);
            });
            g.finish();
        }
        assert!(c.group_prefix.is_none());
    }
}
