//! The robustness layer end to end: deterministic fault injection, the
//! quarantine ledger, and checkpoint/resume of a killed study.
//!
//! Usage: `cargo run --release --example robustness [checkpoint_path]`

use yield_aware_cache::prelude::*;

fn main() {
    // A study where 5% of the dies come out of the fab corrupted: NaN
    // threshold voltages, infinite metal widths, -40-sigma tails, chips
    // dropped outright.
    let plan = FaultPlan::new(0.05, 1).expect("rate in [0, 1]");
    let mut cfg = PopulationConfig::paper(2006);
    cfg.chips = 400;
    cfg.faults = Some(plan);

    let population = Population::generate_with(&cfg);
    println!(
        "generated {} chips: {} classified, {} quarantined",
        cfg.chips,
        population.len(),
        population.quarantine().len()
    );
    for entry in population.quarantine().entries().iter().take(3) {
        println!("  {entry}");
    }
    println!(
        "  ... exactly the planned ones: {}\n",
        population.quarantine().indices() == plan.injected_indices(cfg.seed, cfg.chips)
    );

    // The quarantined chips surface in the loss table instead of
    // poisoning it.
    let constraints = YieldConstraints::derive(&population, ConstraintSpec::NOMINAL);
    println!("{}", render_loss_table(&table2(&population, &constraints)));

    // Checkpoint/resume: simulate a kill after 150 chips, then resume.
    // The resumed population is identical to the uninterrupted one.
    let path = std::env::args()
        .nth(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("robustness-example.ckpt"));
    let _ = std::fs::remove_file(&path);
    let killed =
        yield_aware_cache::core::checkpoint::run_checkpointed_budget(&cfg, &path, 50, Some(150))
            .expect("checkpointing works");
    println!(
        "killed after 150 chips: complete = {} (checkpoint at {})",
        killed.is_some(),
        path.display()
    );
    match run_checkpointed(&cfg, &path, 50) {
        Ok(resumed) => {
            let same = resumed.chips == population.chips
                && resumed.quarantine() == population.quarantine();
            println!("resumed to completion: identical to uninterrupted run = {same}");
        }
        Err(e) => println!("resume failed: {e}"),
    }

    // Typed errors: the taxonomy reports *what* was violated.
    println!("\ntyped errors:");
    println!("  {}", FaultPlan::new(1.5, 0).unwrap_err());
    let mut other = cfg.clone();
    other.seed = 9;
    match run_checkpointed(&other, &path, 50) {
        Ok(_) => println!("  (unexpected: mismatched checkpoint accepted)"),
        Err(e) => println!("  {e}"),
    }
    let _ = std::fs::remove_file(&path);
}
