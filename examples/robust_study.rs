//! The supervised parallel executor end to end: sharded workers that
//! reproduce the serial study bit-for-bit, retry-through-faults, the
//! degraded path with widened confidence intervals, and shard-granular
//! checkpoint resume.
//!
//! Usage:
//! `cargo run --release --example robust_study -- [checkpoint_path]
//!  [--trace trace.json] [--progress]`
//!
//! `--trace` records the structured event journal across all four demos
//! and writes a Perfetto-loadable Chrome trace JSON (plus `yac-trace/1`
//! NDJSON next to it) showing each worker's shard attempts, retries and
//! degrades on its own track. `--progress` prints live status lines to
//! stderr while the studies run.

use std::time::Duration;
use yac_obs::progress::{ProgressConfig, ProgressReporter};
use yield_aware_cache::core::executor::run_checkpointed_workers_budget;
use yield_aware_cache::prelude::*;

/// Executor tuned for a demo: small shards, instant retries.
fn exec(workers: usize) -> ExecutorConfig {
    let mut e = ExecutorConfig::with_workers(workers);
    e.shard_chips = 32;
    e.backoff = Duration::ZERO;
    e
}

fn main() {
    yac_obs::enable();
    let registry = yac_obs::global();

    let mut trace_path: Option<std::path::PathBuf> = None;
    let mut progress = false;
    let mut positional: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace" => {
                trace_path = Some(args.next().expect("--trace requires a path").into());
            }
            "--progress" => progress = true,
            other => positional = Some(other.into()),
        }
    }
    if trace_path.is_some() {
        yac_obs::trace_label_thread("main");
        yac_obs::trace_enable();
    }
    let reporter = progress.then(|| {
        ProgressReporter::start(
            registry,
            ProgressConfig {
                total_chips: 400,
                workers: 4,
                interval: Duration::from_secs(1),
                label: "robust_study".to_owned(),
                total_studies: 0,
            },
        )
    });

    // Injected shard faults are panics by design; silence the default
    // hook so the demo output stays readable (the supervisor catches
    // and reports every one of them anyway).
    std::panic::set_hook(Box::new(|_| {}));

    // A 400-chip study with 5% of the dies corrupted at the fab, run on
    // four supervised workers. The merge is bit-identical to the serial
    // path, faults or not.
    let mut cfg = PopulationConfig::paper(2006);
    cfg.chips = 400;
    cfg.faults = Some(FaultPlan::new(0.05, 1).expect("rate in [0, 1]"));

    let outcome = run_supervised(&cfg, &exec(4)).expect("valid config");
    let serial = Population::generate_with(&cfg);
    println!(
        "4 workers: {} chips classified, {} quarantined, identical to serial = {}",
        outcome.population.len(),
        outcome.population.quarantine().len(),
        outcome.population.chips == serial.chips
            && outcome.population.quarantine() == serial.quarantine()
    );

    // Retry-through-faults: half the shards panic on their first two
    // attempts; the retry budget recovers all of them and the result is
    // still bit-identical.
    let mut flaky = exec(4);
    flaky.shard_faults = Some(ShardFaultPlan::new(0.5, 9, 2).expect("rate in [0, 1]"));
    flaky.max_retries = 3;
    let retries_before = registry.counter(yac_obs::Metric::ShardRetries);
    let retried = run_supervised(&cfg, &flaky).expect("valid config");
    println!(
        "flaky shards: {} retries, degraded = {}, identical to serial = {}",
        registry.counter(yac_obs::Metric::ShardRetries) - retries_before,
        retried.is_degraded(),
        retried.population.chips == serial.chips
    );

    // The degraded path: shards that fail every attempt are recorded,
    // not retried forever — the study completes with the surviving
    // chips and an honest, *widened* yield interval.
    let mut doomed = exec(4);
    doomed.shard_faults = Some(ShardFaultPlan::new(0.25, 5, u32::MAX).expect("rate in [0, 1]"));
    doomed.max_retries = 1;
    let degraded = run_supervised(&cfg, &doomed).expect("valid config");
    println!(
        "\ndegraded run: {} of {} chips missing across {} shard(s):",
        degraded.missing_chips(),
        degraded.requested_chips,
        degraded.degraded.len()
    );
    for d in &degraded.degraded {
        println!(
            "  chips {}..{} after {} attempts: {}",
            d.start,
            d.start + d.len as u64,
            d.attempts,
            d.error
        );
    }
    println!(
        "  yield {} vs complete-study {}",
        degraded.yield_interval, outcome.yield_interval
    );

    // Shard-granular checkpointing: kill a parallel run after 4 shards,
    // resume on a different worker count, still bit-exact.
    let path = positional.unwrap_or_else(|| std::env::temp_dir().join("robust-study-example.ckpt"));
    let _ = std::fs::remove_file(&path);
    let killed = run_checkpointed_workers_budget(&cfg, &exec(4), &path, 2, Some(4))
        .expect("checkpointing works");
    println!(
        "\nkilled after 4 shards: complete = {} (checkpoint at {})",
        killed.is_some(),
        path.display()
    );
    match run_checkpointed_workers(&cfg, &exec(2), &path, 2) {
        Ok(resumed) => println!(
            "resumed on 2 workers: identical to serial run = {}",
            resumed.population.chips == serial.chips
        ),
        Err(e) => println!("resume failed: {e}"),
    }
    let _ = std::fs::remove_file(&path);

    // What the supervisor saw, from the observability registry.
    println!(
        "\nsupervisor counters: {} shards completed, {} retries, {} timeouts, {} degraded",
        registry.counter(yac_obs::Metric::ShardsCompleted),
        registry.counter(yac_obs::Metric::ShardRetries),
        registry.counter(yac_obs::Metric::ShardTimeouts),
        registry.counter(yac_obs::Metric::DegradedShards),
    );

    if let Some(reporter) = reporter {
        reporter.stop();
    }
    if let Some(trace_path) = trace_path {
        yac_obs::trace_disable();
        let snapshot = yac_obs::journal().snapshot();
        let ndjson_path = trace_path.with_extension("ndjson");
        yac_obs::perfetto::write_chrome_json(&trace_path, &snapshot).expect("write trace");
        yac_obs::ndjson::write_ndjson(&ndjson_path, &snapshot).expect("write ndjson");
        println!(
            "\ntraced {} event(s) on {} thread(s) -> {} + {} (load the first at ui.perfetto.dev)",
            snapshot.total_events(),
            snapshot.threads.len(),
            trace_path.display(),
            ndjson_path.display(),
        );
    }
}
