//! The supervised parallel executor end to end: sharded workers that
//! reproduce the serial study bit-for-bit, retry-through-faults, the
//! degraded path with widened confidence intervals, and shard-granular
//! checkpoint resume.
//!
//! Usage: `cargo run --release --example robust_study [checkpoint_path]`

use std::time::Duration;
use yield_aware_cache::core::executor::run_checkpointed_workers_budget;
use yield_aware_cache::prelude::*;

/// Executor tuned for a demo: small shards, instant retries.
fn exec(workers: usize) -> ExecutorConfig {
    let mut e = ExecutorConfig::with_workers(workers);
    e.shard_chips = 32;
    e.backoff = Duration::ZERO;
    e
}

fn main() {
    yac_obs::enable();
    let registry = yac_obs::global();

    // Injected shard faults are panics by design; silence the default
    // hook so the demo output stays readable (the supervisor catches
    // and reports every one of them anyway).
    std::panic::set_hook(Box::new(|_| {}));

    // A 400-chip study with 5% of the dies corrupted at the fab, run on
    // four supervised workers. The merge is bit-identical to the serial
    // path, faults or not.
    let mut cfg = PopulationConfig::paper(2006);
    cfg.chips = 400;
    cfg.faults = Some(FaultPlan::new(0.05, 1).expect("rate in [0, 1]"));

    let outcome = run_supervised(&cfg, &exec(4)).expect("valid config");
    let serial = Population::generate_with(&cfg);
    println!(
        "4 workers: {} chips classified, {} quarantined, identical to serial = {}",
        outcome.population.len(),
        outcome.population.quarantine().len(),
        outcome.population.chips == serial.chips
            && outcome.population.quarantine() == serial.quarantine()
    );

    // Retry-through-faults: half the shards panic on their first two
    // attempts; the retry budget recovers all of them and the result is
    // still bit-identical.
    let mut flaky = exec(4);
    flaky.shard_faults = Some(ShardFaultPlan::new(0.5, 9, 2).expect("rate in [0, 1]"));
    flaky.max_retries = 3;
    let retries_before = registry.counter(yac_obs::Metric::ShardRetries);
    let retried = run_supervised(&cfg, &flaky).expect("valid config");
    println!(
        "flaky shards: {} retries, degraded = {}, identical to serial = {}",
        registry.counter(yac_obs::Metric::ShardRetries) - retries_before,
        retried.is_degraded(),
        retried.population.chips == serial.chips
    );

    // The degraded path: shards that fail every attempt are recorded,
    // not retried forever — the study completes with the surviving
    // chips and an honest, *widened* yield interval.
    let mut doomed = exec(4);
    doomed.shard_faults = Some(ShardFaultPlan::new(0.25, 5, u32::MAX).expect("rate in [0, 1]"));
    doomed.max_retries = 1;
    let degraded = run_supervised(&cfg, &doomed).expect("valid config");
    println!(
        "\ndegraded run: {} of {} chips missing across {} shard(s):",
        degraded.missing_chips(),
        degraded.requested_chips,
        degraded.degraded.len()
    );
    for d in &degraded.degraded {
        println!(
            "  chips {}..{} after {} attempts: {}",
            d.start,
            d.start + d.len as u64,
            d.attempts,
            d.error
        );
    }
    println!(
        "  yield {} vs complete-study {}",
        degraded.yield_interval, outcome.yield_interval
    );

    // Shard-granular checkpointing: kill a parallel run after 4 shards,
    // resume on a different worker count, still bit-exact.
    let path = std::env::args()
        .nth(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("robust-study-example.ckpt"));
    let _ = std::fs::remove_file(&path);
    let killed = run_checkpointed_workers_budget(&cfg, &exec(4), &path, 2, Some(4))
        .expect("checkpointing works");
    println!(
        "\nkilled after 4 shards: complete = {} (checkpoint at {})",
        killed.is_some(),
        path.display()
    );
    match run_checkpointed_workers(&cfg, &exec(2), &path, 2) {
        Ok(resumed) => println!(
            "resumed on 2 workers: identical to serial run = {}",
            resumed.population.chips == serial.chips
        ),
        Err(e) => println!("resume failed: {e}"),
    }
    let _ = std::fs::remove_file(&path);

    // What the supervisor saw, from the observability registry.
    println!(
        "\nsupervisor counters: {} shards completed, {} retries, {} timeouts, {} degraded",
        registry.counter(yac_obs::Metric::ShardsCompleted),
        registry.counter(yac_obs::Metric::ShardRetries),
        registry.counter(yac_obs::Metric::ShardTimeouts),
        registry.counter(yac_obs::Metric::DegradedShards),
    );
}
