//! Drive the out-of-order core directly: run one benchmark on a healthy
//! cache, a VACA-repaired cache (one 5-cycle way) and a YAPD-repaired
//! cache (one way disabled), and compare what the machine does.
//!
//! Run with: `cargo run --release --example pipeline_demo [benchmark]`

use yield_aware_cache::prelude::*;

fn run(label: &str, benchmark: &str, hier: HierarchyConfig, assumed: u32) -> SimStats {
    let mut cfg = PipelineConfig::paper();
    cfg.assumed_load_latency = assumed;
    let mem = MemoryHierarchy::new(hier).expect("valid hierarchy");
    let mut cpu = Pipeline::new(cfg, mem).expect("valid pipeline");
    let profile = spec2000::profile(benchmark).expect("known benchmark");
    let trace = TraceGenerator::new(profile, 2006);
    let stats = cpu.run(trace, 20_000, 200_000);
    println!(
        "{label:<26} CPI {:>6.3}  IPC {:>5.2}  L1D hit {:>5.1}%  bypass {:>6}  replays {:>6}",
        stats.cpi(),
        stats.ipc(),
        100.0 * stats.l1d_load_hit_rate(),
        stats.bypass_stalls,
        stats.replays,
    );
    stats
}

fn main() {
    let benchmark = std::env::args().nth(1).unwrap_or_else(|| "gzip".to_owned());
    println!("benchmark: {benchmark} (200k synthetic micro-ops)\n");

    let base = run(
        "healthy 4x4-cycle cache",
        &benchmark,
        HierarchyConfig::paper(),
        4,
    );

    let mut vaca = HierarchyConfig::paper();
    vaca.l1d.way_latency = vec![4, 4, 4, 5];
    let v = run("VACA: one 5-cycle way", &benchmark, vaca, 4);

    let mut yapd = HierarchyConfig::paper();
    yapd.l1d.way_enabled[3] = false;
    let y = run("YAPD: one way disabled", &benchmark, yapd, 4);

    let mut bin = HierarchyConfig::paper();
    bin.l1d.way_latency = vec![5; 4];
    let b = run("naive 5-cycle binning", &benchmark, bin, 5);

    println!("\nCPI increase over the healthy cache:");
    for (label, stats) in [("VACA", &v), ("YAPD", &y), ("binning", &b)] {
        println!(
            "  {label:<8} +{:.2}%",
            100.0 * (stats.cpi() / base.cpi() - 1.0)
        );
    }
    println!(
        "\nnote the mechanisms: VACA pays with load-bypass stalls, YAPD with extra\nL1D misses, binning with every load scheduled a cycle late"
    );
}
