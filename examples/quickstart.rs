//! Quick start: manufacture a population of chips under process
//! variation, apply all four yield-aware schemes, and print what each one
//! saves.
//!
//! Run with: `cargo run --release --example quickstart`

use yield_aware_cache::prelude::*;

fn main() {
    // 1. Manufacture chips: Monte Carlo process variation through the
    //    analytical circuit model of the 16 KB, 4-way L1 data cache.
    let chips = 1000;
    println!("manufacturing {chips} chips (seed 2006) ...");
    let population = Population::generate(chips, 2006);

    // 2. Yield constraints, as in §5.1 of the paper: delay <= mean + sigma,
    //    leakage <= 3x mean, both derived from the population itself.
    let constraints = YieldConstraints::derive(&population, ConstraintSpec::NOMINAL);
    println!(
        "constraints: delay <= {:.3}, leakage <= {:.2} (cycle time {:.4})\n",
        constraints.delay_limit, constraints.leakage_limit, constraints.cycle_time
    );

    // 3. The base case: how many chips would be discarded?
    let lost = population
        .chips
        .iter()
        .filter(|chip| classify(&chip.regular, &constraints).is_some())
        .count();
    println!(
        "base case: {lost} of {chips} chips fail parametric testing ({:.1}% yield)\n",
        100.0 * (1.0 - lost as f64 / chips as f64)
    );

    // 4. Apply the schemes.
    println!("{}", render_loss_table(&table2(&population, &constraints)));
    println!("{}", render_loss_table(&table3(&population, &constraints)));

    // 5. Inspect one repaired chip in detail.
    let hybrid = Hybrid::new(PowerDownKind::Vertical);
    if let Some((chip, repair)) = population.chips.iter().find_map(|chip| {
        match hybrid.apply(chip, &constraints, population.calibration()) {
            SchemeOutcome::Saved(r) => Some((chip, r)),
            _ => None,
        }
    }) {
        println!("example repair of chip #{}:", chip.index);
        println!(
            "  way delays: {:?}",
            chip.regular
                .ways
                .iter()
                .map(|w| format!("{:.3}", w.delay))
                .collect::<Vec<_>>()
        );
        println!("  settled leakage: {:.2}", chip.regular.leakage);
        match &repair.disabled {
            Some(unit) => println!("  hybrid action: disable {unit}"),
            None => println!("  hybrid action: run slow ways at 5 cycles"),
        }
        println!(
            "  resulting cache: {} ways effective, slowest {} cycles",
            repair.effective_associativity(),
            repair.slowest_cycles()
        );
    }
}
