//! The naive alternative the paper argues against (§4.5): frequency
//! binning. Ship slow chips with the scheduler statically assuming the
//! worst way latency, and compare the cost against the yield-aware
//! schemes.
//!
//! Run with: `cargo run --release --example speed_binning`

use yield_aware_cache::core::loss_table;
use yield_aware_cache::prelude::*;

fn main() {
    let population = Population::generate(1000, 2006);
    let constraints = YieldConstraints::derive(&population, ConstraintSpec::NOMINAL);

    // Yield side: binning saves delay violators whose worst way fits the
    // bin, but no leakage violators.
    println!("== yield: how many chips does each policy ship? ==\n");
    let bin5 = NaiveBinning::new(1);
    let bin6 = NaiveBinning::new(2);
    let vaca = Vaca::default();
    let hybrid = Hybrid::new(PowerDownKind::Vertical);
    let table = loss_table(
        &population,
        &constraints,
        CacheVariant::Regular,
        &[&bin5, &bin6, &vaca, &hybrid],
    );
    println!("{:<22}{:>10}{:>10}", "policy", "losses", "yield%");
    println!(
        "{:<22}{:>10}{:>9.1}%",
        "none (base)",
        table.base.total(),
        100.0 * table.yield_fraction(None)
    );
    for (i, s) in table.schemes.iter().enumerate() {
        let label = match i {
            0 => "5-cycle bin",
            1 => "6-cycle bin",
            2 => "VACA",
            _ => "Hybrid",
        };
        println!(
            "{:<22}{:>10}{:>9.1}%",
            label,
            s.losses.total(),
            100.0 * table.yield_fraction(Some(i))
        );
    }

    // Performance side: what do the shipped chips cost?
    println!("\n== performance: CPI cost of shipping a 3-1-0 chip each way ==\n");
    let opts = PerfOptions::quick();
    let census = WayCycleCensus {
        ways_4: 3,
        ways_5: 1,
        ways_6_plus: 0,
    };
    let vaca_deg = suite_degradation(&canonical_l1d(census, false), &opts);
    let yapd_deg = suite_degradation(&canonical_l1d(census, true), &opts);
    // Binning: every way treated as 5 cycles, scheduler told so.
    let binned = {
        use yield_aware_cache::cache::CacheConfig;
        use yield_aware_cache::core::perf::suite_cpis;
        let base = suite_cpis(&CacheConfig::l1d_paper(), &PipelineConfig::paper(), &opts);
        let mut l1d = CacheConfig::l1d_paper();
        l1d.way_latency = vec![5; 4];
        let mut cfg = PipelineConfig::paper();
        cfg.assumed_load_latency = 5;
        let slow = suite_cpis(&l1d, &cfg, &opts);
        let n = base.len() as f64;
        base.iter()
            .zip(&slow)
            .map(|(&(_, b), &(_, m))| 100.0 * (m / b - 1.0))
            .sum::<f64>()
            / n
    };
    println!("YAPD (disable the slow way):   +{:.2}%", yapd_deg.average);
    println!("VACA (keep it at 5 cycles):    +{:.2}%", vaca_deg.average);
    println!("5-cycle bin (everything slow): +{binned:.2}%");
    println!("\npaper: YAPD 1.08%, VACA 1.81%, binning 6.42% — binning throws away the");
    println!("three healthy ways' speed; the yield-aware schemes pay only for the bad one");
}
