//! Design-space exploration beyond the paper's three constraint settings:
//! sweep the delay and leakage limits continuously and plot how each
//! scheme's yield responds — the curve a manufacturer would use to pick a
//! binning point.
//!
//! Run with: `cargo run --release --example design_space`

use yield_aware_cache::core::{loss_table, ConstraintSpec};
use yield_aware_cache::prelude::*;

fn main() {
    let population = Population::generate(1000, 2006);

    println!("== yield vs delay-limit strictness (leakage fixed at 3x mean) ==\n");
    println!(
        "{:<24}{:>8}{:>8}{:>8}{:>8}{:>8}",
        "delay limit", "base%", "YAPD%", "VACA%", "Hybrid%", "H-YAPD%"
    );
    for k in [0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0] {
        let spec = ConstraintSpec {
            name: "sweep",
            delay_sigma_factor: k,
            leakage_mean_factor: 3.0,
        };
        let constraints = YieldConstraints::derive(&population, spec);
        let t2 = table2(&population, &constraints);
        let t3 = table3(&population, &constraints);
        println!(
            "mean + {k:<4}sigma        {:>7.1}%{:>7.1}%{:>7.1}%{:>7.1}%{:>7.1}%",
            100.0 * t2.yield_fraction(None),
            100.0 * t2.yield_fraction(Some(0)),
            100.0 * t2.yield_fraction(Some(1)),
            100.0 * t2.yield_fraction(Some(2)),
            100.0 * t3.yield_fraction(Some(0)),
        );
    }

    println!("\n== yield vs leakage-limit strictness (delay fixed at mean + sigma) ==\n");
    println!(
        "{:<24}{:>8}{:>8}{:>8}",
        "leakage limit", "base%", "YAPD%", "Hybrid%"
    );
    for m in [1.5, 2.0, 2.5, 3.0, 4.0, 6.0] {
        let spec = ConstraintSpec {
            name: "sweep",
            delay_sigma_factor: 1.0,
            leakage_mean_factor: m,
        };
        let constraints = YieldConstraints::derive(&population, spec);
        let t2 = table2(&population, &constraints);
        println!(
            "{m:<4}x mean leakage      {:>7.1}%{:>7.1}%{:>7.1}%",
            100.0 * t2.yield_fraction(None),
            100.0 * t2.yield_fraction(Some(0)),
            100.0 * t2.yield_fraction(Some(2)),
        );
    }

    // The paper's §4.3 extension: deeper load-bypass buffers would support
    // 6- and 7-cycle ways. How much yield would that buy?
    println!("\n== ablation: VACA load-bypass buffer depth (paper section 4.3) ==\n");
    let constraints = YieldConstraints::derive(&population, ConstraintSpec::NOMINAL);
    println!("{:<28}{:>10}{:>10}", "scheme", "losses", "yield%");
    for depth in 1..=4 {
        let vaca = Vaca::with_buffer_depth(CacheVariant::Regular, depth);
        let t = loss_table(&population, &constraints, CacheVariant::Regular, &[&vaca]);
        println!(
            "VACA, {}-entry buffers      {:>10}{:>9.1}%",
            depth,
            t.schemes[0].losses.total(),
            100.0 * t.yield_fraction(Some(0)),
        );
    }
    println!(
        "\nthe paper keeps single-entry buffers: deeper ones save few extra chips\n(only the 6+-cycle delay tail) at growing performance cost"
    );
}
